"""Tests for the serving substrate: requests, scheduler, meter."""

from __future__ import annotations

import pytest

from repro.hardware.spec import CLOUD_A800
from repro.models.config import LLAMA_LIKE_8B
from repro.perf.engines import FLASHINFER, HF_EAGER, QUEST, SPECONTEXT
from repro.perf.simulate import PerfSimulator
from repro.serving.meter import ThroughputMeter
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import StaticBatchScheduler


@pytest.fixture(scope="module")
def sim():
    return PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, budget=2048)


def requests(n: int, in_len=2048, out_len=4096) -> list[Request]:
    return [Request(request_id=i, in_len=in_len, out_len=out_len) for i in range(n)]


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(request_id=0, in_len=0, out_len=10)

    def test_latency_requires_finish(self):
        request = Request(request_id=0, in_len=10, out_len=10)
        with pytest.raises(RuntimeError):
            _ = request.latency_s

    def test_total_tokens(self):
        assert Request(request_id=0, in_len=10, out_len=5).total_tokens == 15


class TestMeter:
    def test_records_only_terminal_states(self):
        meter = ThroughputMeter()
        with pytest.raises(ValueError):
            meter.record(Request(request_id=0, in_len=1, out_len=1))

    def test_throughput_math(self):
        meter = ThroughputMeter()
        r = Request(request_id=0, in_len=10, out_len=100, arrival_s=0.0)
        r.state = RequestState.FINISHED
        r.finish_s = 10.0
        meter.record(r)
        assert meter.generated_tokens == 100
        assert meter.tokens_per_second == pytest.approx(10.0)
        assert meter.latency_percentile(50) == pytest.approx(10.0)

    def test_empty_meter_zeroes(self):
        meter = ThroughputMeter()
        assert meter.tokens_per_second == 0.0
        assert meter.mean_latency_s == 0.0
        assert meter.completion_rate == 1.0

    def test_rejected_requests_never_skew_latency_aggregates(self):
        """Rejected requests carry unset start_s/finish_s (0.0); they must
        be counted as rejections, not as zero-latency samples."""
        meter = ThroughputMeter()
        finished = Request(request_id=0, in_len=10, out_len=50, arrival_s=2.0)
        finished.state = RequestState.FINISHED
        finished.start_s = 4.0
        finished.finish_s = 12.0
        meter.record(finished)
        rejected = Request(request_id=1, in_len=10, out_len=50, arrival_s=3.0)
        rejected.state = RequestState.REJECTED  # start_s/finish_s unset
        meter.record(rejected)

        assert meter.n_rejected == 1
        assert meter.completion_rate == pytest.approx(0.5)
        # All latency/throughput aggregates come from the finished request
        # alone; the rejected one would otherwise contribute a bogus
        # negative latency (0.0 - 3.0) and drag the makespan start to 0.
        assert meter.mean_latency_s == pytest.approx(10.0)
        assert meter.latency_percentile(0) == pytest.approx(10.0)
        assert meter.makespan_s == pytest.approx(10.0)
        assert meter.generated_tokens == 50

    def test_finished_record_requires_timestamps(self):
        """The scheduler bug class this guards: marking a request FINISHED
        but never stamping its clock times now fails at record time."""
        meter = ThroughputMeter()
        bogus = Request(request_id=0, in_len=10, out_len=10, arrival_s=5.0)
        bogus.state = RequestState.FINISHED  # start_s/finish_s left at 0.0
        with pytest.raises(ValueError, match="timestamps"):
            meter.record(bogus)

    def test_busy_period_throughput_on_gapped_trace(self):
        """Regression: trace replay jumps the clock across arrival gaps,
        so the makespan-based tokens/s punishes sparse traces for time
        the server never worked. Two 10-step busy periods of 100 tokens
        each, separated by an 80-step idle gap: makespan throughput sees
        100 steps, busy throughput the 20 the server actually served."""
        meter = ThroughputMeter()
        for i, (arrival, start, finish) in enumerate(
            [(0.0, 0.0, 10.0), (90.0, 90.0, 100.0)]
        ):
            r = Request(
                request_id=i, in_len=10, out_len=100, arrival_s=arrival
            )
            r.state = RequestState.FINISHED
            r.start_s = start
            r.finish_s = finish
            meter.record(r)
        assert meter.makespan_s == pytest.approx(100.0)
        assert meter.tokens_per_second == pytest.approx(2.0)
        assert meter.busy_s == pytest.approx(20.0)
        assert meter.busy_tokens_per_second == pytest.approx(10.0)

    def test_busy_period_merges_overlapping_intervals(self):
        """Concurrent sessions must not double-count their overlap."""
        meter = ThroughputMeter()
        for i, (start, finish) in enumerate([(0.0, 6.0), (2.0, 8.0)]):
            r = Request(request_id=i, in_len=10, out_len=40, arrival_s=start)
            r.state = RequestState.FINISHED
            r.start_s = start
            r.finish_s = finish
            meter.record(r)
        assert meter.busy_s == pytest.approx(8.0)
        assert meter.busy_tokens_per_second == pytest.approx(10.0)

    def test_ttft_and_queueing_delay_percentiles(self):
        meter = ThroughputMeter()
        specs = [  # (arrival, start, first_token, finish)
            (0.0, 0.0, 2.0, 10.0),
            (1.0, 3.0, 5.0, 12.0),
            (2.0, 8.0, 16.0, 20.0),
        ]
        for i, (arrival, start, first, finish) in enumerate(specs):
            r = Request(request_id=i, in_len=10, out_len=10, arrival_s=arrival)
            r.state = RequestState.FINISHED
            r.start_s = start
            r.finish_s = finish
            r.first_token_s = first
            meter.record(r)
        # TTFT samples: 2, 4, 14; queueing delays: 0, 2, 6.
        assert meter.ttft_percentile(50) == pytest.approx(4.0)
        assert meter.ttft_percentile(100) == pytest.approx(14.0)
        assert meter.mean_ttft_s == pytest.approx(20.0 / 3)
        assert meter.queueing_delay_percentile(50) == pytest.approx(2.0)
        assert meter.mean_queueing_delay_s == pytest.approx(8.0 / 3)

    def test_ttft_skips_records_without_first_token(self):
        """Legacy/synthetic records never stamped a first-token time;
        they must drop out of TTFT aggregates instead of polluting them."""
        meter = ThroughputMeter()
        legacy = Request(request_id=0, in_len=10, out_len=10, arrival_s=0.0)
        legacy.state = RequestState.FINISHED
        legacy.finish_s = 5.0
        meter.record(legacy)
        assert meter.ttft_percentile(95) == 0.0
        assert meter.mean_ttft_s == 0.0
        stamped = Request(request_id=1, in_len=10, out_len=10, arrival_s=0.0)
        stamped.state = RequestState.FINISHED
        stamped.finish_s = 5.0
        stamped.first_token_s = 3.0
        meter.record(stamped)
        assert meter.mean_ttft_s == pytest.approx(3.0)

    def test_first_token_outside_lifetime_rejected(self):
        meter = ThroughputMeter()
        bogus = Request(request_id=0, in_len=10, out_len=10, arrival_s=4.0)
        bogus.state = RequestState.FINISHED
        bogus.start_s = 4.0
        bogus.finish_s = 10.0
        bogus.first_token_s = 2.0  # before arrival
        with pytest.raises(ValueError, match="first token"):
            meter.record(bogus)

    def test_record_mutated_after_recording_is_excluded_not_crashing(self):
        """A finished record requeued for a retry pass used to make every
        latency aggregate raise (Request.latency_s checks state); now it
        is simply excluded until it finishes again."""
        meter = ThroughputMeter()
        request = Request(request_id=0, in_len=10, out_len=20, arrival_s=0.0)
        request.state = RequestState.FINISHED
        request.finish_s = 4.0
        meter.record(request)
        request.state = RequestState.QUEUED  # caller retries it
        assert meter.mean_latency_s == 0.0
        assert meter.generated_tokens == 0
        assert meter.makespan_s == 0.0
        request.state = RequestState.FINISHED
        assert meter.mean_latency_s == pytest.approx(4.0)


class TestScheduler:
    def test_batches_respect_memory_cap(self, sim):
        scheduler = StaticBatchScheduler(sim, FLASHINFER)
        plans = scheduler.plan(requests(40, out_len=32768))
        cap = max(len(p.request_ids) for p in plans)
        assert cap <= 16  # 40 long-output requests can't co-run
        assert sum(len(p.request_ids) for p in plans) == 40

    def test_sparse_engine_packs_bigger_batches(self, sim):
        full_plans = StaticBatchScheduler(sim, FLASHINFER).plan(requests(64))
        ours_plans = StaticBatchScheduler(sim, SPECONTEXT).plan(requests(64))
        assert len(ours_plans) <= len(full_plans)

    def test_single_request_engine_runs_sequentially(self, sim):
        plans = StaticBatchScheduler(sim, QUEST).plan(requests(5))
        assert len(plans) == 5
        assert all(len(p.request_ids) == 1 for p in plans)

    def test_execute_finishes_everything(self, sim):
        reqs = requests(8)
        meter = StaticBatchScheduler(sim, SPECONTEXT).execute(reqs)
        assert len(meter.finished) == 8
        assert meter.tokens_per_second > 0
        assert all(r.state is RequestState.FINISHED for r in reqs)

    def test_impossible_requests_rejected(self, sim):
        reqs = requests(2, in_len=131072, out_len=2048)
        meter = StaticBatchScheduler(sim, HF_EAGER).execute(reqs)
        assert len(meter.rejected) == 2
        assert meter.tokens_per_second == 0.0

    def test_fifo_latency_ordering(self, sim):
        """Later batches finish later (static FIFO batching)."""
        reqs = requests(32)
        StaticBatchScheduler(sim, FLASHINFER).execute(reqs)
        finishes = [r.finish_s for r in reqs]
        assert finishes == sorted(finishes)

    def test_ours_serves_faster_on_long_outputs(self, sim):
        """In the reasoning regime (long outputs), sparsity wins; at short
        outputs full attention is competitive, as in the paper."""
        fast = StaticBatchScheduler(sim, SPECONTEXT).execute(
            requests(32, out_len=32768)
        )
        slow = StaticBatchScheduler(sim, FLASHINFER).execute(
            requests(32, out_len=32768)
        )
        assert fast.tokens_per_second > slow.tokens_per_second
        assert fast.mean_latency_s < slow.mean_latency_s
