"""Tests for the knowledge-distillation substrate (paper Secs. 2.3 and 3.2).

The Sec. 3 claim — distillation aligns the student's information focus with
the teacher's — is verified by actually running KD and watching the
attention-overlap metric rise as the KL falls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distill.dataset import DistillationDataset
from repro.distill.dlm import DistilledLM, full_dlm_analog, pruning_report
from repro.distill.trainer import DistillationTrainer
from repro.models.config import LLAMA_LIKE_8B, QWEN_LIKE_8B


@pytest.fixture(scope="module")
def dataset(tiny_tokenizer):
    return DistillationDataset(tiny_tokenizer, seq_len=96, seed=42)


class TestDataset:
    def test_examples_end_with_query(self, dataset, tiny_tokenizer):
        example = dataset.sample()
        assert tiny_tokenizer.is_content(int(example.token_ids[-1]))

    def test_batch_size(self, dataset):
        assert len(dataset.batch(5)) == 5

    def test_examples_contain_planted_evidence(self, dataset):
        example = dataset.sample()
        ids = example.token_ids
        key = int(ids[-1])
        occurrences = np.where(ids[:-1] == key)[0]
        assert occurrences.size >= 1  # the key appears in the context


class TestDLMInventory:
    def test_total_includes_all_components(self):
        dlm = DistilledLM(vocab_size=100, d_model=8, n_heads=2, head_dim=4, d_ff=16)
        assert dlm.total_params() == (
            dlm.embedding_params + dlm.qk_params + dlm.vo_params
            + dlm.ffn_params + dlm.lm_head_params
        )

    def test_retained_is_qk_only_when_shared(self):
        dlm = DistilledLM(vocab_size=100, d_model=8, n_heads=2, head_dim=4, d_ff=16)
        assert dlm.retained_params() == dlm.qk_params
        assert (
            dlm.retained_params(embedding_shared=False)
            == dlm.qk_params + dlm.embedding_params
        )

    @pytest.mark.parametrize("teacher", [LLAMA_LIKE_8B, QWEN_LIKE_8B])
    def test_paper_scale_pruning_over_90(self, teacher):
        report = pruning_report(teacher)
        assert report.reduction > 0.9

    @pytest.mark.parametrize("teacher", [LLAMA_LIKE_8B, QWEN_LIKE_8B])
    def test_paper_scale_head_around_60mb(self, teacher):
        """Sec. 7.4: 'the weight of the retrieval head ... only about 60MB'."""
        report = pruning_report(teacher)
        assert 20e6 < report.retained_bytes_fp16 < 150e6

    def test_full_dlm_analog_matches_teacher_geometry(self):
        dlm = full_dlm_analog(LLAMA_LIKE_8B)
        assert dlm.vocab_size == LLAMA_LIKE_8B.vocab_size
        assert dlm.n_heads == LLAMA_LIKE_8B.n_q_heads


class TestTraining:
    def test_kl_decreases_on_fixed_eval_set(self, tiny_gqa_model, dataset):
        """Distillation reduces KL(P_T || P_S) on held-out examples.

        Per-epoch training KL is computed on fresh random batches, so the
        comparison uses a fixed eval set before vs after training.
        """
        trainer = DistillationTrainer(
            tiny_gqa_model, dataset, seed=1, lr=2e-2, init_noise=1.0
        )
        eval_examples = dataset.batch(12)

        def mean_kl() -> float:
            return float(
                np.mean([trainer.loss_and_grads(e)[0] for e in eval_examples])
            )

        before = mean_kl()
        trainer.train(epochs=40, batch_size=8, eval_examples=eval_examples)
        assert mean_kl() < 0.8 * before

    def test_attention_overlap_improves(self, tiny_gqa_model, dataset):
        """The Sec. 3 information-focus claim, verified by running KD."""
        trainer = DistillationTrainer(
            tiny_gqa_model, dataset, seed=2, lr=2e-2, init_noise=1.0
        )
        eval_examples = dataset.batch(12)
        before = trainer.attention_overlap(eval_examples)
        trainer.train(epochs=40, batch_size=8, eval_examples=eval_examples)
        after = trainer.attention_overlap(eval_examples)
        assert after >= before
        assert after >= 0.35

    def test_student_attention_normalized(self, tiny_gqa_model, dataset):
        trainer = DistillationTrainer(tiny_gqa_model, dataset, seed=3)
        example = dataset.sample()
        weights = trainer.student_attention(example)
        assert weights.shape[0] == example.token_ids.size - 1
        assert weights.sum() == pytest.approx(1.0, rel=1e-6)

    def test_gradients_numerically_correct(self, tiny_gqa_model, dataset):
        """Finite-difference check of one G entry's gradient."""
        trainer = DistillationTrainer(tiny_gqa_model, dataset, seed=4)
        example = dataset.sample()
        kl0, grads = trainer.loss_and_grads(example)
        eps = 1e-5
        i, j = 0, 1
        trainer.params["G"][i, j] += eps
        kl1, _ = trainer.loss_and_grads(example)
        trainer.params["G"][i, j] -= eps
        numeric = (kl1 - kl0) / eps
        assert grads["G"][i, j] == pytest.approx(numeric, rel=0.05, abs=1e-4)
