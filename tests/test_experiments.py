"""Smoke tests: every experiment runs in quick mode and emits the expected
row structure; the CLI resolves and prints them."""

from __future__ import annotations

import warnings

import pytest

from repro.experiments.common import ExperimentResult, registry
from repro.experiments.runner import main

warnings.filterwarnings("ignore", message="One of the clusters is empty")

EXPECTED_IDS = {
    "ablation-distill", "fig01", "fig02", "fig05", "fig06", "fig08",
    "fig09", "fig10", "fig11", "overhead", "table3",
}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(registry()) == EXPECTED_IDS

    def test_duplicate_registration_rejected(self):
        from repro.experiments.common import register

        with pytest.raises(ValueError):
            register("fig01")(lambda quick=False, seed=0: None)


# Structural expectations per experiment (header subset, min rows).
STRUCTURE = {
    "ablation-distill": (["Head noise", "Full Attn"], 2),
    "fig01": (["Engine", "acc(input)", "thpt(reasoning)"], 8),
    "fig02": (["Part", "Setting", "Value"], 5),
    "fig05": (["Metric", "Level"], 4),
    "fig06": (["Part", "KV budget", "Value"], 6),
    "fig08": (["Task", "Engine"], 20),
    "fig09": (["Model", "Engine", "Average"], 5),
    "fig10": (["Scenario", "Engine"], 10),
    "fig11": (["[In, Out]", "HF", "Final speedup"], 4),
    "overhead": (["Teacher", "Reduction"], 3),
    "table3": (["Model", "[In, Out]", "Ours"], 8),
}


@pytest.mark.parametrize("experiment_id", sorted(EXPECTED_IDS))
def test_experiment_quick_run(experiment_id):
    result = registry()[experiment_id](quick=True, seed=0)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id

    headers, min_rows = STRUCTURE[experiment_id]
    for header in headers:
        assert header in result.headers
    assert len(result.rows) >= min_rows
    for row in result.rows:
        assert len(row) == len(result.headers)

    # format() renders without error and includes the title.
    text = result.format()
    assert result.title.splitlines()[0] in text


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figXX"]) == 2

    def test_run_one(self, capsys):
        assert main(["overhead", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Sec. 7.4" in out

    def test_column_accessor(self):
        result = registry()["overhead"](quick=True)
        reductions = result.column("Reduction")
        assert len(reductions) == len(result.rows)
