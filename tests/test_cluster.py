"""Cluster frontend tests: routing, merged views, bit-identity, meters.

The cluster contract under test:

- placement never changes tokens: every request's stream is bit-identical
  to a solo run of the same request on a fresh replica, across routers,
  replica counts and forced preemption (exact streams; no cross-replica
  array-equality is asserted — the [[bit-identity-semantics]] contract);
- routers are deterministic total orders over the replica views
  (stickiness-threshold fallback, least-loaded tie-breaking by index);
- the frontend's merged stream/preemption/meter views agree with the
  per-replica ground truth, and merged percentiles equal a single meter
  fed the union of records (not any average of per-replica aggregates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ClusterConfig,
    EngineConfig,
    GenerationRequest,
    SamplingParams,
)
from repro.serving import (
    ClusterFrontend,
    SpeContextServer,
    ThroughputMeter,
    available_routers,
    make_router,
    poisson_trace,
    replay_trace_cluster,
    resolve_router_name,
)
from repro.serving.request import Request, RequestState
from repro.serving.trace import solo_token_streams

ALL_NAMES = (
    "specontext", "quest", "h2o", "shadowkv", "clusterkv",
    "streaming", "sliding", "full",
)

# (n_replicas, router) grid for the bit-identity sweep: all three routers,
# replica counts 1, 2 and 4.
CLUSTER_GRID = (
    (1, "round_robin"),
    (2, "round_robin"),
    (2, "prefix_affinity"),
    (4, "least_loaded"),
    (4, "prefix_affinity"),
)


def cluster_engine_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def shared_prefix_requests(
    tokenizer, policy: str, n: int = 5, prefix_len: int = 24, max_new: int = 5
) -> list[GenerationRequest]:
    """n requests sharing a system prefix ahead of unique suffixes."""
    prefix_rng = np.random.default_rng(7)
    prefix = [int(t) for t in tokenizer.random_filler_ids(prefix_rng, prefix_len)]
    requests = []
    for i in range(n):
        rng = np.random.default_rng(300 + i)
        suffix = [int(t) for t in tokenizer.random_filler_ids(rng, 8 + i)]
        requests.append(GenerationRequest(
            np.array([tokenizer.bos_id] + prefix + suffix),
            sampling=SamplingParams(max_new_tokens=max_new),
            policy=policy,
            budget=48,
        ))
    return requests


def clone(request: GenerationRequest) -> GenerationRequest:
    return GenerationRequest(
        request.prompt_ids.copy(),
        sampling=request.sampling,
        policy=request.policy,
        budget=request.budget,
        priority=request.priority,
    )


# ---- router units (no model needed) -----------------------------------------


class StubReplica:
    """Minimal ReplicaView: fixed load and a canned prefix-match answer."""

    def __init__(self, index, reserved_tokens=0, queue_depth=0, match=0):
        self.index = index
        self.reserved_tokens = reserved_tokens
        self.queue_depth = queue_depth
        self._match = match

    def prefix_match_tokens(self, prompt_ids) -> int:
        return self._match


def stub_request(n_tokens: int = 16) -> GenerationRequest:
    return GenerationRequest(np.arange(1, n_tokens + 1))


class TestRouterRegistry:
    def test_available_and_aliases(self):
        assert available_routers() == (
            "least_loaded", "prefix_affinity", "round_robin"
        )
        assert resolve_router_name("RR") == "round_robin"
        assert resolve_router_name("prefix-affinity") == "prefix_affinity"
        assert resolve_router_name("LeastLoaded") == "least_loaded"

    def test_unknown_router_raises(self):
        with pytest.raises(KeyError, match="available"):
            resolve_router_name("rendezvous")

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            make_router("round_robin", stickiness_tokens=4)

    def test_bad_stickiness_rejected(self):
        with pytest.raises(ValueError, match="stickiness_tokens"):
            make_router("prefix_affinity", stickiness_tokens=0)


class TestRoundRobinRouter:
    def test_cycles_deterministically(self):
        router = make_router("round_robin")
        replicas = [StubReplica(i) for i in range(3)]
        chosen = [router.route(stub_request(), replicas) for _ in range(7)]
        assert chosen == [0, 1, 2, 0, 1, 2, 0]


class TestLeastLoadedRouter:
    def test_picks_smallest_reserved_plus_queue(self):
        router = make_router("least_loaded")
        replicas = [
            StubReplica(0, reserved_tokens=100, queue_depth=0),
            StubReplica(1, reserved_tokens=40, queue_depth=2),
            StubReplica(2, reserved_tokens=60, queue_depth=0),
        ]
        assert router.route(stub_request(), replicas) == 1

    def test_queue_depth_counts_toward_load(self):
        router = make_router("least_loaded")
        replicas = [
            StubReplica(0, reserved_tokens=50, queue_depth=10),
            StubReplica(1, reserved_tokens=55, queue_depth=0),
        ]
        assert router.route(stub_request(), replicas) == 1

    def test_tie_breaks_to_lowest_index(self):
        router = make_router("least_loaded")
        replicas = [StubReplica(i, reserved_tokens=64) for i in range(4)]
        assert router.route(stub_request(), replicas) == 0
        replicas[0].reserved_tokens = 65
        assert router.route(stub_request(), replicas) == 1


class TestPrefixAffinityRouter:
    def test_sticks_to_longest_match(self):
        router = make_router("prefix_affinity", stickiness_tokens=8)
        replicas = [
            StubReplica(0, reserved_tokens=0, match=8),
            StubReplica(1, reserved_tokens=500, match=24),
            StubReplica(2, reserved_tokens=0, match=0),
        ]
        # Replica 1 is the most loaded but holds the longest match.
        assert router.route(stub_request(), replicas) == 1

    def test_below_stickiness_falls_back_to_least_loaded(self):
        router = make_router("prefix_affinity", stickiness_tokens=32)
        replicas = [
            StubReplica(0, reserved_tokens=90, match=24),
            StubReplica(1, reserved_tokens=10, match=0),
        ]
        # 24 < 32: the match is ignored; load decides.
        assert router.route(stub_request(), replicas) == 1
        sticky = make_router("prefix_affinity", stickiness_tokens=24)
        assert sticky.route(stub_request(), replicas) == 0

    def test_match_ties_break_by_load_then_index(self):
        router = make_router("prefix_affinity", stickiness_tokens=8)
        replicas = [
            StubReplica(0, reserved_tokens=64, match=16),
            StubReplica(1, reserved_tokens=32, match=16),
            StubReplica(2, reserved_tokens=32, match=16),
        ]
        assert router.route(stub_request(), replicas) == 1


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_replicas"):
            ClusterConfig(n_replicas=0)
        with pytest.raises(ValueError, match="stickiness_tokens"):
            ClusterConfig(stickiness_tokens=0)

    def test_unknown_router_raises_at_frontend_build(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        with pytest.raises(KeyError, match="available"):
            ClusterFrontend(
                tiny_gqa_model,
                cluster_engine_config(tiny_tokenizer),
                ClusterConfig(router="not-a-router"),
            )

    def test_stickiness_reaches_the_router(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        frontend = ClusterFrontend(
            tiny_gqa_model,
            cluster_engine_config(tiny_tokenizer),
            ClusterConfig(router="prefix_affinity", stickiness_tokens=40),
        )
        assert frontend.router.stickiness_tokens == 40


# ---- pool probe --------------------------------------------------------------


class TestLongestPrefixMatch:
    def run_one(self, model, tokenizer, request):
        server = SpeContextServer(
            model, cluster_engine_config(tokenizer)
        )
        server.add_request(clone(request))
        server.run()
        return server

    def test_probe_counts_cached_prefix_without_mutating(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        request = shared_prefix_requests(tiny_tokenizer, "streaming", n=1)[0]
        server = self.run_one(tiny_gqa_model, tiny_tokenizer, request)
        pool = server.pool
        before = (pool.stats.prefix_queries, pool.stats.prefix_hits)
        lru_before = list(pool._prefix_index)
        matched = pool.longest_prefix_match(request.prompt_ids)
        prefill_len = request.prompt_len - 1  # sparse-first prefill
        assert matched == (prefill_len // pool.block_size) * pool.block_size
        assert matched > 0
        # Read-only: no query/hit counted, no LRU refresh.
        assert (pool.stats.prefix_queries, pool.stats.prefix_hits) == before
        assert list(pool._prefix_index) == lru_before

    def test_probe_respects_max_tokens_and_misses(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        request = shared_prefix_requests(tiny_tokenizer, "streaming", n=1)[0]
        server = self.run_one(tiny_gqa_model, tiny_tokenizer, request)
        pool = server.pool
        assert pool.longest_prefix_match(
            request.prompt_ids, pool.block_size
        ) == pool.block_size
        other = np.array([tiny_tokenizer.bos_id] + [3, 1, 4, 1, 5, 9, 2, 6])
        assert pool.longest_prefix_match(other) == 0


# ---- bit-identity sweep ------------------------------------------------------


class TestClusterBitIdentity:
    """Streams identical to solo runs across routers and replica counts."""

    @pytest.mark.parametrize("policy", ALL_NAMES)
    def test_streams_identical_across_grid(
        self, tiny_gqa_model, tiny_tokenizer, policy
    ):
        config = cluster_engine_config(tiny_tokenizer)
        requests = shared_prefix_requests(tiny_tokenizer, policy)
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        trace = poisson_trace(
            np.random.default_rng(11), [clone(r) for r in requests], 2.0
        )
        for n_replicas, router in CLUSTER_GRID:
            frontend = ClusterFrontend(
                tiny_gqa_model,
                config,
                ClusterConfig(
                    n_replicas=n_replicas,
                    router=router,
                    stickiness_tokens=8,
                ),
            )
            outputs = replay_trace_cluster(frontend, trace)
            assert [o.token_ids for o in outputs] == solo, (
                f"{policy} stream diverged on {n_replicas} replicas "
                f"under {router}"
            )

    def test_all_policies_identical_under_forced_preemption(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """A pool too small for a replica's share forces preemption on at
        least one replica; every stream still matches its solo run."""
        requests = []
        for i, name in enumerate(ALL_NAMES):
            requests.extend(
                shared_prefix_requests(
                    tiny_tokenizer, name, n=1, max_new=40
                )
            )
        config = cluster_engine_config(tiny_tokenizer)
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        # Per-replica pool holds two prompts plus one spare block. The
        # prompts share three full prefix blocks (refcounted, so two
        # co-resident sessions occupy less than 2x prompt blocks), hence
        # the long 40-token decode: growth crosses 5 block boundaries per
        # session and must overrun the pool, forcing preemption.
        probe = SpeContextServer(tiny_gqa_model, config).pool
        prompt_blocks = max(
            probe.blocks_for_tokens(r.prompt_len) for r in requests
        )
        pressured = cluster_engine_config(
            tiny_tokenizer, pool_blocks=2 * prompt_blocks + 1
        )
        frontend = ClusterFrontend(
            tiny_gqa_model,
            pressured,
            ClusterConfig(n_replicas=2, router="round_robin"),
        )
        for request in requests:
            frontend.add_request(clone(request))
        frontend.run()
        outputs = frontend.outputs
        assert len(frontend.preemption_log) > 0
        preempted_replicas = {e.replica for e in frontend.preemption_log}
        assert preempted_replicas  # at least one replica hit pressure
        assert [o.token_ids for o in outputs] == solo


# ---- merged views ------------------------------------------------------------


class TestClusterFrontendViews:
    def run_cluster(self, model, tokenizer, router="prefix_affinity", n=6):
        config = cluster_engine_config(tokenizer)
        requests = shared_prefix_requests(tokenizer, "streaming", n=n)
        trace = poisson_trace(np.random.default_rng(5), requests, 2.0)
        frontend = ClusterFrontend(
            model,
            config,
            ClusterConfig(
                n_replicas=3, router=router, stickiness_tokens=8
            ),
        )
        outputs = replay_trace_cluster(frontend, trace)
        return frontend, outputs

    def test_global_ids_and_replica_map(self, tiny_gqa_model, tiny_tokenizer):
        frontend, outputs = self.run_cluster(tiny_gqa_model, tiny_tokenizer)
        ids = [o.request_id for o in outputs]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        for rid in ids:
            replica = frontend.replica_of(rid)
            assert rid in [
                o.request_id for o in frontend.replicas[replica].outputs
            ]
        assert frontend.routing.total_routed == len(outputs)

    def test_merged_stream_matches_outputs(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = cluster_engine_config(tiny_tokenizer)
        requests = shared_prefix_requests(tiny_tokenizer, "streaming", n=6)
        frontend = ClusterFrontend(
            tiny_gqa_model,
            config,
            ClusterConfig(n_replicas=3, router="round_robin"),
        )
        for request in requests:
            frontend.add_request(clone(request))
        events = []
        while frontend.has_unfinished:
            frontend.step()
            events.extend(frontend.pop_stream_events())
        streamed: dict[int, list[int]] = {}
        for event in events:
            assert event.step == len(streamed.setdefault(event.request_id, []))
            streamed[event.request_id].append(event.token_id)
        for output in frontend.outputs:
            assert streamed[output.request_id] == output.token_ids

    def test_affinity_routing_colocates_groups(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        frontend, _ = self.run_cluster(tiny_gqa_model, tiny_tokenizer)
        routing = frontend.routing
        # One cold placement (the first request), everything else sticks.
        assert sum(routing.cold) == 1
        assert sum(routing.affinity_hits) == routing.total_routed - 1
        assert sum(routing.affinity_misses) == 0
        assert routing.hit_rate == 1.0
        assert frontend.prefix_reused_tokens() > 0

    def test_round_robin_leaves_affinity_on_the_table(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        affinity, _ = self.run_cluster(tiny_gqa_model, tiny_tokenizer)
        blind, _ = self.run_cluster(
            tiny_gqa_model, tiny_tokenizer, router="round_robin"
        )
        assert sum(blind.routing.affinity_misses) > 0
        assert (
            blind.prefix_reused_tokens() < affinity.prefix_reused_tokens()
        )

    def test_replica_observer_sees_every_replica(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = cluster_engine_config(tiny_tokenizer)
        requests = shared_prefix_requests(tiny_tokenizer, "streaming", n=4)
        trace = poisson_trace(np.random.default_rng(5), requests, 1.0)
        frontend = ClusterFrontend(
            tiny_gqa_model, config, ClusterConfig(n_replicas=2)
        )
        seen: list[int] = []
        stepped: list[float] = []

        def replica_observer(index: int, server: SpeContextServer) -> None:
            seen.append(index)
            server.pool.check_consistency()
            assert server.pool.n_used <= server.pool.capacity

        replay_trace_cluster(
            frontend,
            trace,
            observer=lambda f: stepped.append(f.clock),
            replica_observer=replica_observer,
        )
        assert len(stepped) > 0
        assert seen.count(0) == len(stepped)
        assert seen.count(1) == len(stepped)

    def test_rejected_submission_leaves_cluster_untouched(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        frontend = ClusterFrontend(
            tiny_gqa_model,
            cluster_engine_config(tiny_tokenizer, pool_blocks=8),
            ClusterConfig(n_replicas=2),
        )
        huge = GenerationRequest(
            np.arange(1, 200), sampling=SamplingParams(max_new_tokens=4)
        )
        with pytest.raises(ValueError, match="KV blocks"):
            frontend.add_request(huge)
        assert huge.request_id is None
        assert frontend.routing.total_routed == 0
        ok = shared_prefix_requests(tiny_tokenizer, "streaming", n=1)[0]
        assert frontend.add_request(ok) == 0

    def test_rejection_does_not_advance_round_robin_cursor(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Placement after a rejection matches a run that never saw it."""
        frontend = ClusterFrontend(
            tiny_gqa_model,
            cluster_engine_config(tiny_tokenizer, pool_blocks=8),
            ClusterConfig(n_replicas=2, router="round_robin"),
        )
        requests = shared_prefix_requests(tiny_tokenizer, "streaming", n=2)
        first = frontend.add_request(clone(requests[0]))
        huge = GenerationRequest(
            np.arange(1, 200), sampling=SamplingParams(max_new_tokens=4)
        )
        with pytest.raises(ValueError, match="KV blocks"):
            frontend.add_request(huge)
        second = frontend.add_request(clone(requests[1]))
        # Round robin: 0 -> replica 0, 1 -> replica 1; the rejected
        # submission in between must not have consumed a cursor slot.
        assert frontend.replica_of(first) == 0
        assert frontend.replica_of(second) == 1


# ---- merged meter ------------------------------------------------------------


def finished_record(rid, arrival, start, first, finish, out_len=4) -> Request:
    record = Request(
        request_id=rid, in_len=8, out_len=out_len, arrival_s=arrival
    )
    record.state = RequestState.FINISHED
    record.start_s = start
    record.first_token_s = first
    record.finish_s = finish
    return record


class TestMeterMerge:
    def records(self):
        rng = np.random.default_rng(3)
        records = []
        for rid in range(24):
            arrival = float(rng.integers(0, 20))
            start = arrival + float(rng.integers(0, 4))
            first = start + 1.0
            finish = first + float(rng.integers(1, 9))
            records.append(
                finished_record(
                    rid, arrival, start, first, finish,
                    out_len=int(rng.integers(1, 12)),
                )
            )
        return records

    def test_merged_percentiles_match_union(self):
        records = self.records()
        union = ThroughputMeter()
        shards = [ThroughputMeter() for _ in range(3)]
        for i, record in enumerate(records):
            union.record(record)
            shards[i % 3].record(record)
        merged = ThroughputMeter.merge(*shards)
        for q in (50, 90, 95, 99):
            assert merged.latency_percentile(q) == union.latency_percentile(q)
            assert merged.ttft_percentile(q) == union.ttft_percentile(q)
            assert merged.queueing_delay_percentile(
                q
            ) == union.queueing_delay_percentile(q)
        assert merged.generated_tokens == union.generated_tokens
        assert merged.makespan_s == union.makespan_s
        assert merged.busy_s == union.busy_s
        assert merged.tokens_per_second == union.tokens_per_second

    def test_merge_counts_rejected_and_empty(self):
        empty = ThroughputMeter.merge(ThroughputMeter(), ThroughputMeter())
        assert empty.completion_rate == 1.0
        shard = ThroughputMeter()
        rejected = Request(request_id=0, in_len=8, out_len=4)
        rejected.state = RequestState.REJECTED
        shard.record(rejected)
        merged = ThroughputMeter.merge(shard)
        assert merged.n_rejected == 1

    def test_merge_is_a_view_not_a_deep_copy(self):
        shard = ThroughputMeter()
        shard.record(finished_record(0, 0.0, 0.0, 1.0, 4.0))
        merged = ThroughputMeter.merge(shard)
        merged.record(finished_record(1, 1.0, 1.0, 2.0, 5.0))
        assert len(shard.finished) == 1  # source untouched
        assert len(merged.finished) == 2

    def test_cluster_stats_equal_union_of_replica_meters(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = cluster_engine_config(tiny_tokenizer)
        requests = shared_prefix_requests(tiny_tokenizer, "streaming", n=6)
        trace = poisson_trace(np.random.default_rng(5), requests, 2.0)
        frontend = ClusterFrontend(
            tiny_gqa_model, config, ClusterConfig(n_replicas=3)
        )
        replay_trace_cluster(frontend, trace)
        merged = frontend.stats()
        union = ThroughputMeter()
        for replica in frontend.replicas:
            for record in replica.meter.finished:
                union.record(record)
        assert len(merged.finished) == len(requests)
        for q in (50, 95):
            assert merged.ttft_percentile(q) == union.ttft_percentile(q)
            assert merged.latency_percentile(q) == union.latency_percentile(q)
