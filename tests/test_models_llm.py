"""End-to-end tests of the transformer substrate: circuits, generation, cache."""

import numpy as np
import pytest

from repro.models import (
    AttentionKind,
    TransformerLM,
    build_recall_model,
    tiny_test_config,
)
from repro.models.builder import head_roles, make_content_vectors
from repro.models.weights import ModelWeights, random_weights

from tests.conftest import make_recall_prompt


class TestRecallCircuit:
    """The constructed models must genuinely solve associative recall."""

    @pytest.mark.parametrize(
        "fixture",
        ["tiny_gqa_model", "tiny_mha_model", "tiny_mqa_model", "tiny_mla_model"],
    )
    def test_single_hop_recall(self, fixture, tiny_tokenizer, rng_factory, request):
        model = request.getfixturevalue(fixture)
        rng = rng_factory.stream(f"recall-{fixture}")
        hits = 0
        for trial in range(5):
            prompt, expected, _ = make_recall_prompt(
                tiny_tokenizer, rng, query_pair=trial % 8
            )
            result = model.generate(prompt, max_new_tokens=1)
            hits += int(result.token_ids[0] == expected)
        assert hits >= 4, f"{fixture} recalled only {hits}/5"

    def test_multi_hop_chain(self, tiny_gqa_model, tiny_tokenizer, rng_factory):
        """A->B then B->C chained across decode steps."""
        tok = tiny_tokenizer
        rng = rng_factory.stream("chain")
        ents = tok.random_content_ids(rng, 3)
        a, b, c = (int(t) for t in ents)
        filler = [int(t) for t in tok.random_filler_ids(rng, 200)]
        ids = (
            [tok.bos_id] + filler[:80] + [a, b] + filler[80:150] + [b, c]
            + filler[150:] + [tok.question_id, a]
        )
        result = tiny_gqa_model.generate(np.array(ids), max_new_tokens=2)
        assert result.token_ids == [b, c]

    def test_eos_terminates_chain(self, tiny_gqa_model, tiny_tokenizer, rng_factory):
        tok = tiny_tokenizer
        rng = rng_factory.stream("eos-chain")
        a, b = (int(t) for t in tok.random_content_ids(rng, 2))
        filler = [int(t) for t in tok.random_filler_ids(rng, 120)]
        ids = (
            [tok.bos_id] + filler[:60] + [a, b, tok.eos_id] + filler[60:]
            + [tok.question_id, a]
        )
        result = tiny_gqa_model.generate(
            np.array(ids), max_new_tokens=5, stop_ids=(tok.eos_id,)
        )
        assert result.token_ids[:2] == [b, tok.eos_id]
        assert result.stopped_by_eos

    def test_recall_robust_to_distractors(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        """Many other key/value pairs must not confuse retrieval."""
        rng = rng_factory.stream("distractors")
        prompt, expected, _ = make_recall_prompt(
            tiny_tokenizer, rng, n_pairs=16, n_filler=600, query_pair=9
        )
        result = tiny_gqa_model.generate(prompt, max_new_tokens=1)
        assert result.token_ids[0] == expected


class TestSparseDecodeHook:
    class _FixedPolicy:
        """Returns the same 1-D selection for every layer."""

        def __init__(self, indices):
            self.indices = np.asarray(indices)

        def begin_generation(self, prompt_ids, cache):
            pass

        def pre_step(self, step, token_id, cache):
            pass

        def select(self, layer, hidden, position, cache):
            return self.indices

    def test_selection_including_evidence_preserves_answer(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        rng = rng_factory.stream("sparse-good")
        prompt, expected, value_pos = make_recall_prompt(tiny_tokenizer, rng)
        # Keep evidence (key/value and neighbors) + sink + recent tokens.
        keep = set(range(0, 4)) | set(range(value_pos - 3, value_pos + 1))
        keep |= set(range(len(prompt) - 8, len(prompt)))
        policy = self._FixedPolicy(sorted(keep))
        result = tiny_gqa_model.generate(
            prompt, max_new_tokens=1, policy=policy, sparse_from_first_token=True
        )
        assert result.token_ids[0] == expected

    def test_selection_excluding_evidence_breaks_answer(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        """Dropping the needle's KV must change the output — the causal link
        the accuracy experiments rely on."""
        rng = rng_factory.stream("sparse-bad")
        prompt, expected, value_pos = make_recall_prompt(tiny_tokenizer, rng)
        keep = [i for i in range(len(prompt)) if abs(i - value_pos) > 3]
        policy = self._FixedPolicy(keep)
        result = tiny_gqa_model.generate(
            prompt, max_new_tokens=1, policy=policy, sparse_from_first_token=True
        )
        assert result.token_ids[0] != expected

    def test_selections_recorded(self, tiny_gqa_model, tiny_tokenizer, rng_factory):
        rng = rng_factory.stream("sparse-rec")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng)
        policy = self._FixedPolicy(np.arange(50))
        result = tiny_gqa_model.generate(
            prompt, max_new_tokens=2, policy=policy, sparse_from_first_token=True
        )
        assert len(result.selections) == 2
        assert set(result.selections[0].keys()) == set(
            range(tiny_gqa_model.config.n_layers)
        )

    def test_current_token_always_attended(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        rng = rng_factory.stream("sparse-cur")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng)
        policy = self._FixedPolicy(np.arange(10))
        result = tiny_gqa_model.generate(
            prompt, max_new_tokens=2, policy=policy, sparse_from_first_token=True
        )
        # Step 1 decodes the first generated token at position len(prompt)-1+1.
        sel = result.selections[1][0]
        assert len(prompt) in sel.tolist()


class TestGeneration:
    def test_greedy_deterministic(self, tiny_gqa_model, tiny_tokenizer, rng_factory):
        rng = rng_factory.stream("greedy")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng)
        a = tiny_gqa_model.generate(prompt, max_new_tokens=3)
        b = tiny_gqa_model.generate(prompt, max_new_tokens=3)
        assert a.token_ids == b.token_ids

    def test_temperature_requires_rng(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        rng = rng_factory.stream("temp")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng)
        with pytest.raises(ValueError):
            tiny_gqa_model.generate(prompt, max_new_tokens=1, temperature=1.0)

    def test_empty_prompt_rejected(self, tiny_gqa_model):
        with pytest.raises(ValueError):
            tiny_gqa_model.generate(np.array([], dtype=int), max_new_tokens=1)

    def test_capture_attention_shapes(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        rng = rng_factory.stream("capture")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=60, n_pairs=3)
        result = tiny_gqa_model.generate(
            prompt, max_new_tokens=2, capture_attention=True,
            sparse_from_first_token=True,
        )
        assert len(result.attention_trace) == 2
        step0 = result.attention_trace[0]
        assert len(step0) == tiny_gqa_model.config.n_layers
        weights = step0[0]
        assert weights.shape[0] == tiny_gqa_model.config.n_q_heads
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-4)

    def test_incremental_prefill_matches_single_shot(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        rng = rng_factory.stream("incr")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=80, n_pairs=3)
        c1 = tiny_gqa_model.new_cache()
        logits1 = tiny_gqa_model.prefill(prompt, c1)
        c2 = tiny_gqa_model.new_cache()
        tiny_gqa_model.prefill(prompt[:50], c2)
        logits2 = tiny_gqa_model.prefill(prompt[50:], c2)
        np.testing.assert_allclose(logits1, logits2, atol=1e-3)

    @pytest.mark.parametrize("chunk", [1, 7, 16, 10_000])
    def test_prefill_chunked_matches_one_shot(
        self, chunk, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        """Chunked prefill computes the same math as one-shot prefill:
        KV values and final logits agree to the last ulp of the float32
        projections (chunk boundaries shift BLAS GEMM blocking, so exact
        array equality only holds when the chunk covers the prompt), and
        the next-token argmax — what generation consumes — is identical.
        Stream-level bit-identity is pinned by tests/test_chunked_prefill.py."""
        rng = rng_factory.stream(f"chunked-{chunk}")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=60, n_pairs=3)
        one_shot = tiny_gqa_model.new_cache()
        expected = tiny_gqa_model.prefill(prompt, one_shot)
        chunked = tiny_gqa_model.new_cache()
        logits = tiny_gqa_model.prefill_chunked(prompt, chunked, chunk)
        np.testing.assert_allclose(expected, logits, rtol=1e-4, atol=1e-5)
        assert int(np.argmax(logits)) == int(np.argmax(expected))
        assert chunked.seq_len == one_shot.seq_len
        for layer_a, layer_b in zip(one_shot.layers, chunked.layers):
            np.testing.assert_allclose(
                layer_a.keys, layer_b.keys, rtol=1e-4, atol=1e-5
            )
            np.testing.assert_allclose(
                layer_a.values, layer_b.values, rtol=1e-4, atol=1e-5
            )
        if chunk >= prompt.size:  # single chunk: identical call, exact
            np.testing.assert_array_equal(expected, logits)

    def test_prefill_chunked_validates_inputs(self, tiny_gqa_model):
        with pytest.raises(ValueError, match="chunk_tokens"):
            tiny_gqa_model.prefill_chunked(
                np.array([1, 2, 3]), tiny_gqa_model.new_cache(), 0
            )
        with pytest.raises(ValueError, match="non-empty"):
            tiny_gqa_model.prefill_chunked(
                np.array([]), tiny_gqa_model.new_cache(), 4
            )


class TestBuilderInternals:
    def test_head_roles_layer0_has_prev(self):
        cfg = tiny_test_config(AttentionKind.GQA)
        assert head_roles(cfg, 0)[0] == "prev"
        assert head_roles(cfg, 1)[0] == "induction"

    def test_content_vectors_unit_norm(self):
        vecs = make_content_vectors(100, 32, np.random.default_rng(0))
        np.testing.assert_allclose(np.linalg.norm(vecs, axis=1), 1.0, atol=1e-5)

    def test_correlation_raises_intra_cluster_cosine(self):
        rng = np.random.default_rng(1)
        low = make_content_vectors(400, 32, rng, correlation=0.0, n_clusters=4)
        rng = np.random.default_rng(1)
        high = make_content_vectors(400, 32, rng, correlation=0.8, n_clusters=4)
        mean_low = np.abs(low @ low.T - np.eye(400)).mean()
        mean_high = np.abs(high @ high.T - np.eye(400)).mean()
        assert mean_high > mean_low

    def test_wrong_d_model_rejected(self, tiny_tokenizer):
        cfg = tiny_test_config().with_(d_model=128)
        with pytest.raises(ValueError):
            build_recall_model(cfg, tiny_tokenizer, np.random.default_rng(0))

    def test_save_load_roundtrip(self, tmp_path, tiny_tokenizer, rng_factory):
        cfg = tiny_test_config(n_layers=2)
        w = build_recall_model(cfg, tiny_tokenizer, rng_factory.stream("saveload"))
        path = str(tmp_path / "model.npz")
        w.save(path)
        loaded = ModelWeights.load(path, cfg)
        np.testing.assert_array_equal(loaded.embedding, w.embedding)
        np.testing.assert_array_equal(loaded.layers[1].wq, w.layers[1].wq)
        assert loaded.layers[0].rope_key_offset == w.layers[0].rope_key_offset
        model = TransformerLM(loaded)
        prompt, expected, _ = make_recall_prompt(
            tiny_tokenizer, rng_factory.stream("saveload-data"), n_filler=60, n_pairs=3
        )
        assert model.generate(prompt, max_new_tokens=1).token_ids[0] == expected

    def test_random_weights_runs(self, tiny_tokenizer):
        cfg = tiny_test_config(n_layers=2).with_(use_norm=True)
        w = random_weights(cfg, np.random.default_rng(0))
        model = TransformerLM(w)
        out = model.generate(np.array([1, 2, 3]), max_new_tokens=2)
        assert len(out.token_ids) == 2

    def test_parameter_counts_positive(self, tiny_gqa_model):
        assert tiny_gqa_model.weights.parameters() > 0


class TestAttentionConcentration:
    """Verify the constructed heads attend where the circuit says."""

    def test_prev_head_attends_previous_position(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        rng = rng_factory.stream("prevhead")
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=60, n_pairs=3)
        result = tiny_gqa_model.generate(
            prompt, max_new_tokens=1, capture_attention=True,
            sparse_from_first_token=True,
        )
        # Layer 0, kv-head 0 (q heads 0..group) is the prev head. The decode
        # token sits at position len(prompt); previous is len(prompt)-1.
        weights = result.attention_trace[0][0]  # (Hq, kv_len)
        prev_pos = weights.shape[1] - 2
        assert weights[0].argmax() in (prev_pos, prev_pos + 1)
        assert weights[0, prev_pos] > 0.3

    def test_induction_head_attends_value_position(
        self, tiny_gqa_model, tiny_tokenizer, rng_factory
    ):
        rng = rng_factory.stream("indhead")
        prompt, expected, value_pos = make_recall_prompt(
            tiny_tokenizer, rng, n_filler=80, n_pairs=4
        )
        cache = tiny_gqa_model.new_cache()
        tiny_gqa_model.prefill(prompt[:-1], cache)
        _, _, attn = tiny_gqa_model.decode_step(
            int(prompt[-1]), cache, capture_attention=True
        )
        # Layer 1+, q-head 0 is the induction head; it should put most mass
        # on the value position (whose S1 holds the queried key's content).
        weights = attn[1][0]
        assert int(weights.argmax()) == value_pos
        assert weights[value_pos] > 0.5


class TestBatchedDecodeStep:
    """decode_step_batch row j == decode_step on session j, bit for bit."""

    def _make_sessions(self, model, tokenizer, policy_names, budget=48):
        """Two identical session sets: one for each decode path."""
        from repro.retrieval.registry import make_policy

        sets = []
        for _ in range(2):
            caches, pendings, policies = [], [], []
            for i, name in enumerate(policy_names):
                rng = np.random.default_rng(500 + i)
                ids = [int(t) for t in tokenizer.random_filler_ids(rng, 40 + 4 * i)]
                prompt = np.array([tokenizer.bos_id] + ids)
                cache = model.new_cache()
                model.prefill(prompt[:-1], cache)
                policy = None
                if name is not None:
                    policy = make_policy(name, model, budget)
                    policy.begin_generation(prompt[:-1], cache)
                caches.append(cache)
                policies.append(policy)
                pendings.append(int(prompt[-1]))
            sets.append((caches, policies, pendings))
        return sets

    @pytest.mark.parametrize("fixture", [
        "tiny_gqa_model", "tiny_mha_model", "tiny_mqa_model", "tiny_mla_model",
    ])
    def test_bit_identical_over_steps(self, fixture, tiny_tokenizer, request):
        model = request.getfixturevalue(fixture)
        if fixture == "tiny_mla_model":
            names = [None, "streaming", "sliding", "full"]
        else:
            names = [None, "streaming", "quest", "h2o", "sliding", "full"]
        (seq_caches, seq_policies, seq_pending), (
            bat_caches, bat_policies, bat_pending,
        ) = self._make_sessions(model, tiny_tokenizer, names)
        for step in range(6):
            seq_logits, seq_selections = [], []
            for j in range(len(names)):
                if seq_policies[j] is not None:
                    seq_policies[j].pre_step(step, seq_pending[j], seq_caches[j])
                logits, sels, _ = model.decode_step(
                    seq_pending[j], seq_caches[j], policy=seq_policies[j]
                )
                seq_logits.append(logits)
                seq_selections.append(sels)
            for j in range(len(names)):
                if bat_policies[j] is not None:
                    bat_policies[j].pre_step(step, bat_pending[j], bat_caches[j])
            bat_logits, bat_selections = model.decode_step_batch(
                bat_pending, bat_caches, bat_policies
            )
            for j in range(len(names)):
                assert (bat_logits[j] == seq_logits[j]).all(), (names[j], step)
                assert bat_selections[j].keys() == seq_selections[j].keys()
                for layer, sel in seq_selections[j].items():
                    assert np.array_equal(bat_selections[j][layer], sel), (
                        names[j], step, layer,
                    )
                token = int(np.argmax(seq_logits[j]))
                assert token == int(np.argmax(bat_logits[j]))
                seq_pending[j] = token
                bat_pending[j] = token
            # The caches themselves must agree entry for entry.
            for j in range(len(names)):
                for layer in range(len(seq_caches[j])):
                    assert (
                        seq_caches[j][layer].keys == bat_caches[j][layer].keys
                    ).all()
                    assert (
                        seq_caches[j][layer].values == bat_caches[j][layer].values
                    ).all()

    def test_batch_of_one_matches(self, tiny_gqa_model, tiny_tokenizer):
        (seq_caches, seq_policies, seq_pending), (
            bat_caches, bat_policies, bat_pending,
        ) = self._make_sessions(tiny_gqa_model, tiny_tokenizer, ["streaming"])
        logits, _, _ = tiny_gqa_model.decode_step(
            seq_pending[0], seq_caches[0], policy=seq_policies[0]
        )
        bat_logits, _ = tiny_gqa_model.decode_step_batch(
            bat_pending, bat_caches, bat_policies
        )
        assert (bat_logits[0] == logits).all()

    def test_batch_size_mismatch_rejected(self, tiny_gqa_model):
        with pytest.raises(ValueError, match="batch size mismatch"):
            tiny_gqa_model.decode_step_batch(
                [1, 2], [tiny_gqa_model.new_cache()], None
            )
