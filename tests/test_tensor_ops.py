"""Tests for repro.tensor.ops, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import (
    cross_entropy,
    kl_divergence,
    layer_norm,
    linear,
    linear_rows,
    log_softmax,
    rms_norm,
    silu,
    softmax,
    top_k_indices,
)

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False, width=64)


class TestSoftmax:
    @given(arrays(np.float64, st.integers(2, 32), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_normalizes(self, x):
        p = softmax(x)
        assert p.shape == x.shape
        assert np.all(p >= 0)
        assert np.isclose(p.sum(), 1.0)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)

    def test_extreme_values_stable(self):
        p = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isfinite(p).all()
        assert p[0] == pytest.approx(1.0)

    def test_axis(self):
        x = np.arange(6.0).reshape(2, 3)
        p = softmax(x, axis=0)
        np.testing.assert_allclose(p.sum(axis=0), np.ones(3))

    @given(arrays(np.float64, st.integers(2, 16), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_log_softmax_consistent(self, x):
        np.testing.assert_allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-10)


class TestNorms:
    def test_rms_norm_unit_rms(self):
        x = np.random.default_rng(0).standard_normal((4, 32))
        out = rms_norm(x, np.ones(32))
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, np.ones(4), atol=1e-3)

    def test_rms_norm_weight_scales(self):
        x = np.random.default_rng(1).standard_normal(16)
        out2 = rms_norm(x, 2.0 * np.ones(16))
        out1 = rms_norm(x, np.ones(16))
        np.testing.assert_allclose(out2, 2.0 * out1)

    def test_layer_norm_zero_mean_unit_var(self):
        x = np.random.default_rng(2).standard_normal((3, 64)) * 5 + 3
        out = layer_norm(x, np.ones(64))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.var(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_bias(self):
        x = np.random.default_rng(3).standard_normal(8)
        out = layer_norm(x, np.ones(8), bias=np.full(8, 2.0))
        np.testing.assert_allclose(out.mean(), 2.0, atol=1e-6)


class TestActivationsAndLinear:
    def test_silu_known_values(self):
        assert silu(np.array([0.0]))[0] == 0.0
        assert silu(np.array([100.0]))[0] == pytest.approx(100.0)

    def test_linear_matches_manual(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((5, 8))
        w = rng.standard_normal((3, 8))
        b = rng.standard_normal(3)
        np.testing.assert_allclose(linear(x, w, b), x @ w.T + b)


class TestDivergences:
    def test_kl_self_zero(self):
        logits = np.random.default_rng(5).standard_normal(16)
        assert kl_divergence(logits, logits) == pytest.approx(0.0, abs=1e-10)

    @given(
        arrays(np.float64, 8, elements=finite_floats),
        arrays(np.float64, 8, elements=finite_floats),
    )
    @settings(max_examples=50, deadline=None)
    def test_kl_nonnegative(self, p, q):
        assert kl_divergence(p, q) >= -1e-9

    def test_cross_entropy_perfect_prediction(self):
        logits = np.zeros((2, 4))
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert cross_entropy(logits, np.array([1, 2])) == pytest.approx(0.0, abs=1e-6)


class TestTopK:
    def test_basic(self):
        idx = top_k_indices(np.array([0.1, 5.0, 3.0, 4.0]), 2)
        assert list(idx) == [1, 3]

    def test_k_exceeds_length(self):
        idx = top_k_indices(np.array([2.0, 1.0]), 10)
        assert list(idx) == [0, 1]

    def test_2d_rows(self):
        scores = np.array([[1.0, 9.0, 2.0], [7.0, 0.0, 3.0]])
        idx = top_k_indices(scores, 1, axis=-1)
        assert idx.shape == (2, 1)
        assert idx[0, 0] == 1
        assert idx[1, 0] == 0

    @given(
        arrays(np.float64, st.integers(3, 40), elements=finite_floats),
        st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_contains_max(self, scores, k):
        k = min(k, scores.size)
        idx = top_k_indices(scores, k)
        assert len(set(idx.tolist())) == k
        assert scores[idx].max() == scores.max()

    @given(arrays(np.float64, st.integers(5, 40), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_property_selected_dominate_rest(self, scores):
        k = 3
        idx = set(top_k_indices(scores, k).tolist())
        rest = [scores[i] for i in range(scores.size) if i not in idx]
        if rest:
            assert min(scores[list(idx)]) >= max(rest) - 1e-12


class TestSiluOverflowSafety:
    def test_large_negative_inputs_no_warning(self):
        """silu must not emit RuntimeWarnings under -W error."""
        for dtype in (np.float32, np.float64):
            x = np.array([-1e4, -750.0, -90.0, 0.0, 90.0, 1e4], dtype=dtype)
            with np.errstate(over="raise", invalid="raise"):
                out = silu(x)
            assert np.isfinite(out).all()
            assert out.dtype == dtype
            # Limit behaviour: silu(x) -> 0 as x -> -inf, -> x as x -> +inf.
            assert abs(out[0]) < 1e-30
            assert out[-1] == x[-1]

    def test_bit_identical_to_naive_form_in_safe_range(self):
        rng = np.random.default_rng(0)
        for dtype in (np.float32, np.float64):
            x = (rng.standard_normal(512) * 20).astype(dtype)
            naive = x / (1.0 + np.exp(-x))
            assert (silu(x) == naive).all()

    def test_continuous_across_clip_threshold(self):
        """No jump where the clipped branch takes over."""
        for dtype, limit in ((np.float32, 88.0), (np.float64, 709.0)):
            x = np.linspace(-limit - 5, -limit + 5, 101).astype(dtype)
            out = silu(x)
            assert np.isfinite(out).all()
            assert np.abs(out).max() < 1e-30


class TestLinear:
    def test_bias_none_returns_matmul_directly(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, 8))
        w = rng.standard_normal((5, 8))
        assert (linear(x, w) == x @ w.T).all()

    def test_bias_applied(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(8)
        w = rng.standard_normal((5, 8))
        b = rng.standard_normal(5)
        np.testing.assert_allclose(linear(x, w, b), (x[None] @ w.T)[0] + b)

    def test_1d_promoted_to_one_row_gemm(self):
        """1-D inputs reduce like a one-row GEMM (the linear_rows contract)."""
        rng = np.random.default_rng(3)
        for dtype in (np.float32, np.float64):
            x = rng.standard_normal(193).astype(dtype)
            w = rng.standard_normal((512, 193)).astype(dtype)
            assert (linear(x, w) == (x[None, :] @ w.T)[0]).all()


class TestLinearRows:
    """The bit-identity contract the batched decode path is built on."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("n,d,m", [(1, 16, 16), (8, 193, 512), (5, 64, 256)])
    def test_rows_bit_identical_to_linear(self, dtype, n, d, m):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((n, d)).astype(dtype)
        w = rng.standard_normal((m, d)).astype(dtype)
        b = rng.standard_normal(m).astype(dtype)
        fused = linear_rows(x, w)
        fused_bias = linear_rows(x, w, b)
        for r in range(n):
            assert (fused[r] == linear(x[r], w)).all()
            assert (fused_bias[r] == linear(x[r], w, b)).all()

    def test_shape(self):
        x = np.zeros((4, 8))
        w = np.zeros((3, 8))
        assert linear_rows(x, w).shape == (4, 3)
