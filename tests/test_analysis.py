"""Fixture tests for the ``repro.analysis`` static-analysis passes.

Each pass is exercised four ways: a seeded true positive it must catch,
an inline-suppressed variant it must skip (and count), a
baseline-grandfathered variant, and a clean variant producing nothing.
Two mutation tests then prove the linter guards the *real* tree: deleting
one arm of a reserve_spec/release_spec pair from a copy of server.py, or
one ``_op_`` handler from a copy of worker.py, must each produce a
finding. Finally a self-check pins that the shipped tree is clean
against the committed baseline — the exact gate the CI job runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import DEFAULT_BASELINE, Baseline, run
from repro.analysis import contract, schema
from repro.analysis.astutil import Module
from repro.analysis.findings import Suppressions

REPRO_DIR = Path(__file__).resolve().parent.parent / "src" / "repro"


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root


def scan(root: Path, **kwargs):
    return run([root / "pkg"], **kwargs)


def rules_of(report) -> list[str]:
    return [f.rule for f in report.findings]


# ---- pass 1: determinism -----------------------------------------------------


class TestDeterminismPass:
    def test_wall_clock_true_positive(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/sched.py": (
                "import time\n\n\ndef now():\n    return time.time()\n"
            ),
        })
        report = scan(scan_root)
        assert rules_of(report) == ["wall-clock"]
        assert report.findings[0].line == 5

    def test_wall_clock_suppressed(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/sched.py": (
                "import time\n\n\ndef now():\n"
                "    return time.time()  # repro: allow(wall-clock): gauge\n"
            ),
        })
        report = scan(scan_root)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["wall-clock"]

    def test_wall_clock_grandfathered_but_new_occurrence_fails(self, tmp_path):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        scan_root = write_tree(tmp_path, {"pkg/serving/sched.py": source})
        baseline = Baseline.from_findings(scan(scan_root).findings)
        report = scan(scan_root, baseline=baseline)
        assert report.findings == []
        assert [f.rule for f in report.baselined] == ["wall-clock"]
        # A second occurrence of the same pattern exceeds the budget.
        (scan_root / "pkg/serving/sched.py").write_text(
            source + "\n\ndef later():\n    return time.time()\n"
        )
        report = scan(scan_root, baseline=baseline)
        assert rules_of(report) == ["wall-clock"]

    def test_allowlisted_segments_and_sleep_are_clean(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            # Benchmarks legitimately read wall clocks.
            "pkg/benchmarks/bench.py": (
                "import time\nstart = time.perf_counter()\n"
            ),
            # time.sleep changes latency, never state.
            "pkg/serving/pace.py": "import time\ntime.sleep(0.1)\n",
        })
        assert scan(scan_root).findings == []

    def test_unseeded_rng_flagged_seeded_clean(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/kvcache/bad.py": (
                "import numpy as np\nx = np.random.rand(3)\n"
                "rng = np.random.default_rng()\n"
            ),
            "pkg/kvcache/good.py": (
                "import numpy as np\nrng = np.random.default_rng(1234)\n"
                "x = rng.standard_normal(3)\n"
            ),
        })
        report = scan(scan_root)
        assert rules_of(report) == ["unseeded-rng", "unseeded-rng"]
        assert all(f.path.endswith("bad.py") for f in report.findings)

    def test_set_iteration_flagged_sorted_clean(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/pick.py": (
                "def pick(vals, drop):\n"
                "    chosen = set(vals) - set(drop)\n"
                "    out = []\n"
                "    for x in chosen:\n"
                "        out.append(x)\n"
                "    return out\n"
                "\n"
                "\n"
                "def pick_ok(vals, drop):\n"
                "    chosen = set(vals) - set(drop)\n"
                "    return [x for x in sorted(chosen)]\n"
            ),
        })
        report = scan(scan_root)
        assert rules_of(report) == ["set-iteration"]
        assert report.findings[0].line == 4

    def test_matmul_only_flagged_in_models(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/models/layer.py": (
                "import numpy as np\n\n\ndef f(x, w):\n    return x @ w.T\n"
            ),
            # Same code outside models/ is out of scope for this rule.
            "pkg/retrieval/score.py": (
                "def f(x, w):\n    return x @ w.T\n"
            ),
        })
        report = scan(scan_root)
        assert rules_of(report) == ["row-fused-matmul"]
        assert report.findings[0].path.endswith("models/layer.py")


# ---- pass 2: resource pairing ------------------------------------------------


LEAKY_SPEC = """\
def propose(pool, n):
    reserved = pool.reserve_spec(n)
    if n > 2:
        return []
    pool.release_spec(reserved)
    return [1]
"""

PAIRED_SPEC = """\
def propose(pool, n):
    reserved = pool.reserve_spec(n)
    if n > 2:
        pool.release_spec(reserved)
        return []
    pool.promote_spec(None, reserved[:1])
    pool.release_spec(reserved[1:])
    return [1]
"""


class TestResourcePass:
    def test_leak_on_one_path_flagged(self, tmp_path):
        scan_root = write_tree(tmp_path, {"pkg/serving/spec.py": LEAKY_SPEC})
        report = scan(scan_root)
        assert rules_of(report) == ["spec-reservation-leak"]
        assert report.findings[0].line == 2

    def test_paired_on_all_paths_clean(self, tmp_path):
        scan_root = write_tree(tmp_path, {"pkg/serving/spec.py": PAIRED_SPEC})
        assert scan(scan_root).findings == []

    def test_len_does_not_discharge_the_obligation(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/spec.py": (
                "def propose(pool, n):\n"
                "    reserved = pool.reserve_spec(n)\n"
                "    return len(reserved)\n"
            ),
        })
        assert rules_of(scan(scan_root)) == ["spec-reservation-leak"]

    def test_suppressed_leak_is_counted_not_reported(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/spec.py": LEAKY_SPEC.replace(
                "reserved = pool.reserve_spec(n)",
                "reserved = pool.reserve_spec(n)"
                "  # repro: allow(spec-reservation-leak): fixture",
            ),
        })
        report = scan(scan_root)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["spec-reservation-leak"]

    def test_free_in_try_body_flagged_finally_clean(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/drop.py": (
                "def bad(pool, table, work):\n"
                "    try:\n"
                "        work()\n"
                "        pool.free_table(table)\n"
                "    except ValueError:\n"
                "        pass\n"
                "\n"
                "\n"
                "def good(pool, table, work):\n"
                "    try:\n"
                "        work()\n"
                "    finally:\n"
                "        pool.free_table(table)\n"
            ),
        })
        report = scan(scan_root)
        assert rules_of(report) == ["free-in-try-body"]
        assert report.findings[0].line == 4


# ---- pass 3: worker protocol -------------------------------------------------


WORKER_FIXTURE = """\
class WorkerCore:
    def _op_step(self):
        return 1

    def _op_submit(self, request):
        return 2

    def _op_lonely(self):
        return 3
"""

EXECUTOR_FIXTURE = """\
def drive(handle, request):
    handle.call("step")
    handle.call("submit", request)
    handle.call("missing")
    handle.call("step", 1, 2)
"""


class TestProtocolPass:
    def test_unknown_unused_and_arity_findings(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/engine/worker.py": WORKER_FIXTURE,
            "pkg/serving/engine/executor.py": EXECUTOR_FIXTURE,
        })
        report = scan(scan_root)
        assert sorted(rules_of(report)) == [
            "op-arity-mismatch", "unknown-op", "unused-op",
        ]
        by_rule = {f.rule: f for f in report.findings}
        assert "missing" in by_rule["unknown-op"].message
        assert "_op_lonely" in by_rule["unused-op"].message
        assert by_rule["unknown-op"].path.endswith("executor.py")
        assert by_rule["unused-op"].path.endswith("worker.py")

    def test_matched_protocol_is_clean(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/engine/worker.py": WORKER_FIXTURE,
            "pkg/serving/engine/executor.py": (
                "def drive(handle, request):\n"
                '    handle.call("step")\n'
                '    handle.call("submit", request)\n'
                '    handle.call("lonely")\n'
            ),
        })
        assert scan(scan_root).findings == []

    def test_unused_op_suppressible_on_handler_line(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/serving/engine/worker.py": WORKER_FIXTURE.replace(
                "def _op_lonely(self):",
                "def _op_lonely(self):  # repro: allow(unused-op): external",
            ),
            "pkg/serving/engine/executor.py": (
                "def drive(handle, request):\n"
                '    handle.call("step")\n'
                '    handle.call("submit", request)\n'
            ),
        })
        report = scan(scan_root)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["unused-op"]


# ---- pass 4: error contract --------------------------------------------------


ERRORS_FIXTURE = """\
class ApiError(Exception):
    http_status = 500
    code = "internal_error"


class TeapotError(ApiError):
    http_status = 418
    code = "teapot"
"""


class TestContractPass:
    def test_unmapped_and_dead_arm_flagged(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/api/errors.py": ERRORS_FIXTURE,
            "pkg/serving/http.py": (
                "def _error_type_for(status):\n"
                "    if status == 500:\n"
                '        return "api_error"\n'
                "    if status == 499:\n"
                '        return "client_closed"\n'
                '    return "invalid_request_error"\n'
            ),
        })
        report = scan(scan_root, rules=set(contract.RULES))
        assert sorted(rules_of(report)) == [
            "unknown-contract-status", "unmapped-error-status",
        ]
        by_rule = {f.rule: f for f in report.findings}
        assert "418" in by_rule["unmapped-error-status"].message
        assert "499" in by_rule["unknown-contract-status"].message

    def test_full_contract_is_clean(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/api/errors.py": ERRORS_FIXTURE,
            "pkg/serving/http.py": (
                "def _error_type_for(status):\n"
                "    if status == 418:\n"
                '        return "teapot_error"\n'
                "    if status >= 500:\n"
                '        return "api_error"\n'
                '    return "invalid_request_error"\n'
            ),
        })
        assert scan(scan_root, rules=set(contract.RULES)).findings == []

    def test_missing_and_duplicate_codes_flagged(self, tmp_path):
        scan_root = write_tree(tmp_path, {
            "pkg/api/errors.py": (
                "class NoCodeError(Exception):\n"
                "    http_status = 422\n"
                "\n"
                "\n"
                "class AError(Exception):\n"
                "    http_status = 409\n"
                '    code = "conflict"\n'
                "\n"
                "\n"
                "class BError(Exception):\n"
                "    http_status = 409\n"
                '    code = "conflict"\n'
            ),
            "pkg/serving/http.py": (
                "def _error_type_for(status):\n"
                "    if status in (409, 422):\n"
                '        return "invalid_request_error"\n'
                '    return "api_error"\n'
            ),
        })
        assert sorted(
            rules_of(scan(scan_root, rules=set(contract.RULES)))
        ) == [
            "duplicate-error-code", "error-missing-code",
        ]


# ---- pass 5: http schema -----------------------------------------------------


HTTP_SCHEMA_FIXTURE = """\
COMPLETION_REQUEST_FIELDS = frozenset({"prompt", "stream"})


def _field(body, name, types, default):
    return body.get(name, default)


def parse_completion_body(raw, tokenizer):
    body = dict(raw)
    unknown = sorted(set(body) - COMPLETION_REQUEST_FIELDS)
    if unknown:
        raise ValueError(unknown)
    prompt = body.get("prompt")
    stream = _field(body, "stream", bool, False)
    return prompt, stream


def models_payload():
    return {"object": "list", "data": []}
"""

SCHEMA_TABLE = {"list": ["data", "object"]}


def _write_table(tmp_path, objects):
    path = tmp_path / "http_schema.json"
    path.write_text(json.dumps({"version": 1, "objects": objects}))
    return path


def _schema_findings(source, tmp_path, objects=None):
    table = _write_table(
        tmp_path, SCHEMA_TABLE if objects is None else objects
    )
    module = Module.from_source(source, "pkg/serving/http.py")
    return schema.check_schema(module, table_path=table)


class TestSchemaPass:
    def test_clean_fixture_produces_nothing(self, tmp_path):
        assert _schema_findings(HTTP_SCHEMA_FIXTURE, tmp_path) == []

    def test_unlisted_read_field_flagged(self, tmp_path):
        source = HTTP_SCHEMA_FIXTURE.replace(
            'prompt = body.get("prompt")',
            'prompt = body.get("prompt")\n    extra = body.get("extra")',
        )
        findings = _schema_findings(source, tmp_path)
        assert [f.rule for f in findings] == ["schema-field-unlisted"]
        assert "'extra'" in findings[0].message

    def test_unread_allowlist_field_flagged(self, tmp_path):
        source = HTTP_SCHEMA_FIXTURE.replace(
            '{"prompt", "stream"}', '{"prompt", "stream", "ghost"}'
        )
        findings = _schema_findings(source, tmp_path)
        assert [f.rule for f in findings] == ["schema-field-unread"]
        assert "'ghost'" in findings[0].message

    def test_missing_rejection_flagged(self, tmp_path):
        source = HTTP_SCHEMA_FIXTURE.replace(
            "    unknown = sorted(set(body) - COMPLETION_REQUEST_FIELDS)\n"
            "    if unknown:\n"
            "        raise ValueError(unknown)\n",
            "",
        )
        findings = _schema_findings(source, tmp_path)
        assert [f.rule for f in findings] == ["unknown-fields-accepted"]

    def test_response_drift_both_directions(self, tmp_path):
        # Extra serialized key not in the table.
        source = HTTP_SCHEMA_FIXTURE.replace(
            '{"object": "list", "data": []}',
            '{"object": "list", "data": [], "surprise": 1}',
        )
        findings = _schema_findings(source, tmp_path)
        assert [f.rule for f in findings] == ["schema-response-drift"]
        assert "surprise" in findings[0].message
        # Table pins a kind the code never serializes.
        findings = _schema_findings(
            HTTP_SCHEMA_FIXTURE, tmp_path,
            objects={**SCHEMA_TABLE, "usage": ["total_tokens"]},
        )
        assert [f.rule for f in findings] == ["schema-response-drift"]
        assert "'usage'" in findings[0].message

    def test_missing_table_flagged(self, tmp_path):
        module = Module.from_source(
            HTTP_SCHEMA_FIXTURE, "pkg/serving/http.py"
        )
        findings = schema.check_schema(
            module, table_path=tmp_path / "nope.json"
        )
        assert [f.rule for f in findings] == ["schema-response-drift"]

    def test_real_tree_mutation_is_caught(self):
        # Dropping a field from the real allowlist must fail the linter.
        source = (REPRO_DIR / "serving" / "http.py").read_text()
        assert '"budget",' in source, "http.py allowlist shape changed"
        module = Module.from_source(
            source.replace('"budget",', "", 1), "src/repro/serving/http.py"
        )
        findings = schema.check_schema(module)
        assert any(
            f.rule == "schema-field-unlisted" and "'budget'" in f.message
            for f in findings
        )


# ---- suppression / baseline mechanics ----------------------------------------


class TestOverlays:
    def test_standalone_comment_covers_next_code_line(self):
        sup = Suppressions.parse(
            "import time\n"
            "# repro: allow(wall-clock): justified above the statement\n"
            "t = time.time()\n"
        )
        assert sup.covers(3, "wall-clock")
        assert not sup.covers(1, "wall-clock")

    def test_marker_inside_string_does_not_suppress(self):
        sup = Suppressions.parse(
            'text = "# repro: allow(wall-clock)"\n'
        )
        assert not sup.covers(1, "wall-clock")

    def test_star_covers_every_rule(self):
        sup = Suppressions.parse("x = 1  # repro: allow(*)\n")
        assert sup.covers(1, "wall-clock") and sup.covers(1, "unused-op")

    def test_baseline_round_trip(self, tmp_path):
        baseline = Baseline({"wall-clock::pkg/a.py::t = time.time()": 2})
        path = tmp_path / "baseline.json"
        baseline.dump(path)
        assert Baseline.load(path).counts == baseline.counts


# ---- mutation tests against the real tree ------------------------------------


def _copy_into(scan_root: Path, rel: str, source: Path, mutate=None) -> None:
    text = source.read_text()
    if mutate is not None:
        text = mutate(text)
    target = scan_root / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)


class TestMutationsAreCaught:
    def test_deleting_release_spec_arm_fails_the_linter(self, tmp_path):
        needle = (
            "        if not drafts:\n"
            "            self.pool.release_spec(reserved)\n"
        )
        source = (REPRO_DIR / "serving" / "server.py").read_text()
        assert needle in source, "server.py spec-propose shape changed"
        _copy_into(
            tmp_path, "pkg/serving/server.py",
            REPRO_DIR / "serving" / "server.py",
            mutate=lambda t: t.replace(needle, "        if not drafts:\n"),
        )
        report = scan(tmp_path)
        assert "spec-reservation-leak" in rules_of(report)
        # The unmutated copy is clean — the finding is the mutation's.
        _copy_into(
            tmp_path, "pkg/serving/server.py",
            REPRO_DIR / "serving" / "server.py",
        )
        assert scan(tmp_path).findings == []

    def test_deleting_op_handler_fails_the_linter(self, tmp_path):
        engine = REPRO_DIR / "serving" / "engine"
        _copy_into(
            tmp_path, "pkg/serving/engine/worker.py", engine / "worker.py",
            mutate=lambda t: t.replace("def _op_abort", "def _disabled_abort"),
        )
        _copy_into(
            tmp_path, "pkg/serving/engine/executor.py",
            engine / "executor.py",
        )
        report = scan(tmp_path)
        unknown = [f for f in report.findings if f.rule == "unknown-op"]
        assert unknown and "abort" in unknown[0].message


# ---- self-check: the shipped tree is clean -----------------------------------


class TestShippedTree:
    def test_src_repro_clean_against_committed_baseline(self):
        report = run([REPRO_DIR], baseline=Baseline.load(DEFAULT_BASELINE))
        assert report.errors == []
        assert report.findings == [], report.render_text()
        assert report.n_files > 50  # the whole package was actually scanned

    def test_cli_json_exit_zero(self):
        env = dict(os.environ)
        src = str(REPRO_DIR.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--format", "json"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["exit_code"] == 0
        assert payload["n_findings"] == 0
