"""Chaos-harness tests: scripted faults replay with exactly-once semantics.

The acceptance bar for overload-safe serving, checked per seeded plan:

- every admitted, non-expired request streams tokens **bit-identical**
  to the fault-free run (fresh executor + fresh trace per run, streams
  compared by trace index);
- every shed or expired request surfaces **exactly one** typed terminal
  error — never a hang, never a duplicate;
- plans replay on both executors at 1, 2 and 4 workers, and the whole
  report is deterministic at fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ClusterConfig,
    EngineConfig,
    GenerationRequest,
    SamplingParams,
)
from repro.serving import (
    Fault,
    FaultPlan,
    bursty_trace,
    heavy_tailed_trace,
    run_chaos,
)
from repro.serving.engine import InProcessExecutor, MultiprocExecutor

EXECUTORS = (InProcessExecutor, MultiprocExecutor)


def engine_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def fresh_trace(tokenizer, n=6, max_new=4, seed=7, **sampling):
    """A fresh bursty trace (unsubmitted request objects) per call.

    Requests are mutated by submission (they get ids), so every chaos
    run needs its own copies for cross-run comparison to be meaningful.
    """
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(n):
        prompt = [tokenizer.bos_id] + [
            int(t) for t in tokenizer.random_filler_ids(rng, 8)
        ]
        requests.append(
            GenerationRequest(
                prompt_ids=np.array(prompt, dtype=np.int64),
                sampling=SamplingParams(max_new_tokens=max_new, **sampling),
            )
        )
    return bursty_trace(
        np.random.default_rng(seed + 1),
        requests,
        burst_size=3,
        on_mean_interarrival_steps=0.5,
        off_steps=4.0,
    )


def run_plan(kind, model, tokenizer, n_workers, plan, config=None, trace=None):
    executor = kind(
        model,
        config or engine_config(tokenizer),
        ClusterConfig(
            n_replicas=n_workers, router="round_robin", heartbeat_s=1.0
        ),
    )
    try:
        return run_chaos(
            executor,
            trace if trace is not None else fresh_trace(tokenizer),
            plan,
        )
    finally:
        executor.shutdown()


def plan_for(n_workers: int) -> FaultPlan:
    """The densest plan a cell survives: lethal faults need a spare worker."""
    if n_workers == 1:
        return FaultPlan(
            "nonlethal",
            (
                Fault(step=1, kind="slow_step", duration_s=0.2),
                Fault(step=2, kind="pipe_drop", drops=2),
                Fault(step=3, kind="pool_burst", n_requests=3),
            ),
        )
    if n_workers == 2:
        return FaultPlan(
            "kill+burst",
            (
                Fault(step=2, kind="kill", worker=0),
                Fault(step=3, kind="pool_burst", n_requests=3),
            ),
        )
    return FaultPlan(
        "kill+stall+burst",
        (
            Fault(step=2, kind="kill", worker=0),
            Fault(step=3, kind="stall", worker=1, duration_s=4.0),
            Fault(step=4, kind="pool_burst", n_requests=3),
        ),
    )


# ---- fault and plan validation -----------------------------------------------


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(step=0, kind="meteor")

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            Fault(step=-1, kind="kill")

    def test_negative_worker_rejected(self):
        with pytest.raises(ValueError, match="worker"):
            Fault(step=0, kind="kill", worker=-2)

    def test_plan_lookup_and_last_step(self):
        faults = (
            Fault(step=3, kind="kill"),
            Fault(step=1, kind="pipe_drop"),
            Fault(step=3, kind="pool_burst"),
        )
        plan = FaultPlan("p", faults)
        assert plan.at_step(3) == [faults[0], faults[2]]
        assert plan.at_step(0) == []
        assert plan.last_step == 3
        assert FaultPlan("empty").last_step == -1


# ---- trace generators --------------------------------------------------------


class TestTraceGenerators:
    def requests(self, n=8):
        return [
            GenerationRequest(
                prompt_ids=np.array([2, 3, 4], dtype=np.int64),
                sampling=SamplingParams(max_new_tokens=2),
            )
            for _ in range(n)
        ]

    def test_bursty_is_seed_deterministic(self):
        a = bursty_trace(np.random.default_rng(3), self.requests(), 3, 0.5, 6.0)
        b = bursty_trace(np.random.default_rng(3), self.requests(), 3, 0.5, 6.0)
        assert [e.arrival_step for e in a] == [e.arrival_step for e in b]
        arrivals = [e.arrival_step for e in a]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0

    def test_bursty_has_idle_gaps_between_bursts(self):
        trace = bursty_trace(
            np.random.default_rng(3), self.requests(12), 4, 0.0, 50.0
        )
        arrivals = [e.arrival_step for e in trace]
        # Within a burst arrivals coincide; across bursts the clock jumps.
        assert arrivals[0] == arrivals[3]
        assert arrivals[4] - arrivals[3] > 1

    def test_bursty_validates(self):
        with pytest.raises(ValueError, match="burst_size"):
            bursty_trace(np.random.default_rng(0), self.requests(), 0, 1.0, 1.0)
        with pytest.raises(ValueError, match="must be >= 0"):
            bursty_trace(np.random.default_rng(0), self.requests(), 2, -1.0, 1.0)

    def test_heavy_tailed_is_seed_deterministic(self):
        a = heavy_tailed_trace(np.random.default_rng(5), self.requests())
        b = heavy_tailed_trace(np.random.default_rng(5), self.requests())
        assert [e.arrival_step for e in a] == [e.arrival_step for e in b]
        gaps = np.diff([e.arrival_step for e in a])
        assert (gaps >= 1).all()  # scale floors every gap

    def test_heavy_tailed_validates(self):
        with pytest.raises(ValueError, match="shape"):
            heavy_tailed_trace(np.random.default_rng(0), self.requests(), 0.0)


# ---- the chaos matrix: both executors, 1/2/4 workers -------------------------


class TestChaosMatrix:
    @pytest.mark.parametrize("kind", EXECUTORS)
    @pytest.mark.parametrize("n_workers", (1, 2, 4))
    def test_streams_bit_identical_under_faults(
        self, kind, n_workers, tiny_gqa_model, tiny_tokenizer
    ):
        plan = plan_for(n_workers)
        clean = run_plan(
            kind, tiny_gqa_model, tiny_tokenizer, n_workers, FaultPlan("clean")
        )
        chaos = run_plan(
            kind, tiny_gqa_model, tiny_tokenizer, n_workers, plan
        )
        assert len(chaos.faults_fired) == len(plan.faults)
        # Every trace request finished (no shedding configured)...
        assert len(clean.foreground_streams) == len(chaos.foreground_streams)
        assert all(clean.foreground_streams.values())
        # ...and its stream is bit-identical to the fault-free run.
        assert chaos.foreground_streams == clean.foreground_streams
        # Terminal errors, when any, are exactly-once per request.
        assert all(len(v) == 1 for v in chaos.terminal_errors.values())
        if any(f.kind == "kill" for f in plan.faults):
            assert chaos.resubmissions

    def test_chaos_report_is_deterministic(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        plan = plan_for(2)
        reports = [
            run_plan(InProcessExecutor, tiny_gqa_model, tiny_tokenizer, 2, plan)
            for _ in range(2)
        ]
        first, second = reports
        assert first.foreground_streams == second.foreground_streams
        assert first.shed == second.shed
        assert first.resubmissions == second.resubmissions
        assert [o.token_ids for o in first.outputs] == [
            o.token_ids for o in second.outputs
        ]


# ---- chaos under overload: deadlines + admission + bursts --------------------


class TestChaosOverload:
    def test_shed_and_expired_get_exactly_one_typed_error(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(
            tiny_tokenizer,
            max_concurrency=2,
            admission="queue_depth",
            admission_opts={"max_waiting": 2},
        )
        trace = fresh_trace(
            tiny_tokenizer,
            n=10,
            max_new=6,
            seed=11,
            total_deadline_s=8.0,
        )
        plan = FaultPlan(
            "burst", (Fault(step=1, kind="pool_burst", n_requests=4),)
        )
        executor = InProcessExecutor(
            tiny_gqa_model, config, ClusterConfig(n_replicas=1)
        )
        try:
            report = run_chaos(executor, trace, plan)
        finally:
            executor.shutdown()
        admitted = set(report.request_ids.values())
        finished = {o.request_id for o in report.outputs}
        expired = {f.request_id for f in report.failures}
        # The overload produced all three fates.
        assert report.shed and expired and finished
        # Shed requests never got an id; expiries are admitted requests,
        # and every admitted request has exactly one fate.
        assert all(code == "overloaded" for _, code in report.shed)
        foreground_expired = expired & admitted
        foreground_finished = (finished | set(report.streams)) & admitted
        assert foreground_expired.isdisjoint(foreground_finished - expired)
        assert all(len(v) == 1 for v in report.terminal_errors.values())
        for failure in report.failures:
            assert failure.code == "deadline_exceeded"
            assert failure.http_status in (408, 504)
        # Shed trace entries are disjoint from admitted ones.
        shed_indices = {index for index, _ in report.shed}
        assert shed_indices.isdisjoint(report.request_ids)
        assert len(shed_indices) + len(report.request_ids) == len(trace)
