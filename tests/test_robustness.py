"""Overload-safety tests: deadlines, admission control, failure plumbing.

The robustness contract under test:

- requests carrying ``ttft_deadline_s``/``total_deadline_s`` are
  cancelled by the server the moment the deadline becomes unmeetable on
  the virtual clock: pool blocks are freed, exactly one typed
  ``deadline_exceeded`` failure (408 for TTFT, 504 for total) and one
  terminal error stream event surface, and the expiry schedule replays
  deterministically at fixed seed;
- admission controllers shed at ``add_request`` with a typed
  :class:`OverloadedError` (HTTP 429 + ``Retry-After``), leave the shed
  request retryable, and never change the token streams of admitted
  requests;
- the executors propagate worker-side failures with global ids exactly
  once, survive transient pipe drops within the retry budget, and the
  progress watchdog quarantines stalled-but-alive workers while letting
  slow-but-beating workers finish;
- client-disconnect aborts mid-chunked-prefill and mid-speculation
  release every pool block and every spec reservation;
- config validation failures are typed (:class:`ConfigValidationError`),
  and the HTTP frontend maps every robustness error to its status while
  ``/healthz`` reports shedding and ``/stats`` answers degraded.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import numpy as np
import pytest

from repro.api import (
    ClusterConfig,
    ConfigValidationError,
    DeadlineExceededError,
    EngineConfig,
    GenerationRequest,
    InvalidSamplingError,
    OverloadedError,
    SamplingParams,
)
from repro.serving import (
    AdmissionController,
    ClusterFrontend,
    available_admissions,
    make_admission,
    resolve_admission_name,
)
from repro.serving.engine import InProcessExecutor, MultiprocExecutor
from repro.serving.http import AsyncEngine, HttpServer
from repro.serving.server import SpeContextServer

EXECUTORS = (InProcessExecutor, MultiprocExecutor)


def engine_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def filler_request(tokenizer, seed=5, n=10, max_new=4, **sampling):
    rng = np.random.default_rng(seed)
    prompt = [tokenizer.bos_id] + [
        int(t) for t in tokenizer.random_filler_ids(rng, n)
    ]
    return GenerationRequest(
        np.array(prompt),
        sampling=SamplingParams(max_new_tokens=max_new, **sampling),
    )


def pool_fully_released(server: SpeContextServer) -> bool:
    """No session holds blocks: everything is free or cache-evictable."""
    pool = server.pool
    return pool.n_free + pool.n_evictable() == pool.capacity


# ---- config validation -------------------------------------------------------


class TestConfigValidation:
    def test_engine_config_typed_errors(self, tiny_tokenizer):
        for bad in (
            dict(budget=0),
            dict(max_concurrency=0),
            dict(block_size=0),
            dict(admission=""),
            dict(admission_opts=[("a", 1)]),
        ):
            with pytest.raises(ConfigValidationError):
                engine_config(tiny_tokenizer, **bad)

    def test_cluster_config_typed_errors(self):
        for bad in (
            dict(n_replicas=0),
            dict(heartbeat_s=0.0),
            dict(heartbeat_s=float("inf")),
            dict(pace_s_per_token=-1.0),
            dict(pipe_retries=-1),
            dict(pipe_retry_backoff_s=-0.1),
        ):
            with pytest.raises(ConfigValidationError):
                ClusterConfig(**bad)

    def test_config_validation_error_is_value_error(self):
        with pytest.raises(ValueError):
            ClusterConfig(pipe_retries=-1)

    def test_sampling_deadline_validation(self):
        with pytest.raises(InvalidSamplingError):
            SamplingParams(ttft_deadline_s=0.0)
        with pytest.raises(InvalidSamplingError):
            SamplingParams(total_deadline_s=float("nan"))
        with pytest.raises(InvalidSamplingError):
            SamplingParams(ttft_deadline_s=5.0, total_deadline_s=2.0)
        params = SamplingParams(ttft_deadline_s=2.0, total_deadline_s=8.0)
        assert params.ttft_deadline_s == 2.0


# ---- admission registry ------------------------------------------------------


class TestAdmissionRegistry:
    def test_registry_names(self):
        names = available_admissions()
        for expected in (
            "accept_all", "queue_depth", "token_backlog", "deadline_feasible",
        ):
            assert expected in names

    def test_aliases_resolve(self):
        assert resolve_admission_name("QD") == "queue_depth"
        assert resolve_admission_name("none") == "accept_all"
        assert resolve_admission_name("edf-admit") == "deadline_feasible"
        with pytest.raises(KeyError):
            resolve_admission_name("nope")

    def test_make_admission_rejects_unknown_opts(self):
        with pytest.raises(TypeError):
            make_admission("queue_depth", max_wating=3)

    def test_base_controller_accepts_everything(self, tiny_tokenizer):
        controller = make_admission("accept_all")
        assert isinstance(controller, AdmissionController)
        assert controller.name == "accept_all"


# ---- admission behavior ------------------------------------------------------


class TestAdmissionControl:
    def test_queue_depth_sheds_and_stays_retryable(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(
            tiny_tokenizer,
            max_concurrency=1,
            admission="queue_depth",
            admission_opts={"max_waiting": 1},
        )
        server = SpeContextServer(tiny_gqa_model, config)
        server.add_request(filler_request(tiny_tokenizer, seed=1))
        shed = filler_request(tiny_tokenizer, seed=2)
        with pytest.raises(OverloadedError) as excinfo:
            server.add_request(shed)
        assert excinfo.value.http_status == 429
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retry_after_s >= 1.0
        # Shed request untouched: no id consumed, resubmission works later.
        assert shed.request_id is None
        assert server.shedding
        assert len(server.meter.rejected) == 1
        server.run()
        assert not server.shedding
        rid = server.add_request(shed)
        assert rid is not None
        server.run()

    def test_token_backlog_sheds_on_commitment(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(
            tiny_tokenizer,
            admission="token_backlog",
            admission_opts={"max_backlog_tokens": 32},
        )
        server = SpeContextServer(tiny_gqa_model, config)
        server.add_request(filler_request(tiny_tokenizer, seed=1, n=20))
        with pytest.raises(OverloadedError):
            server.add_request(filler_request(tiny_tokenizer, seed=2, n=20))

    def test_deadline_feasible_sheds_only_infeasible(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(
            tiny_tokenizer,
            max_concurrency=1,
            admission="deadline_feasible",
            admission_opts={"queue_delay_per_waiting": 4.0},
        )
        server = SpeContextServer(tiny_gqa_model, config)
        server.add_request(filler_request(tiny_tokenizer, seed=1, max_new=8))
        server.add_request(filler_request(tiny_tokenizer, seed=2, max_new=8))
        # No deadline: always admitted, whatever the queue looks like.
        server.add_request(filler_request(tiny_tokenizer, seed=3))
        # Infeasible TTFT given two waiting requests ahead.
        with pytest.raises(OverloadedError):
            server.add_request(
                filler_request(tiny_tokenizer, seed=4, ttft_deadline_s=2.0)
            )
        # Feasible deadline: admitted.
        server.add_request(
            filler_request(tiny_tokenizer, seed=5, total_deadline_s=200.0)
        )

    def test_admission_does_not_change_admitted_streams(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        def run(admission, opts):
            config = engine_config(
                tiny_tokenizer,
                max_concurrency=2,
                admission=admission,
                admission_opts=opts,
            )
            server = SpeContextServer(tiny_gqa_model, config)
            admitted = {}
            for i in range(6):
                request = filler_request(tiny_tokenizer, seed=100 + i)
                try:
                    server.add_request(request)
                except OverloadedError:
                    continue
                admitted[i] = request
            outputs = {o.request_id: o.token_ids for o in server.run()}
            return {
                i: outputs[r.request_id] for i, r in admitted.items()
            }

        reference = run("accept_all", {})
        shedded = run("queue_depth", {"max_waiting": 1})
        assert 0 < len(shedded) < len(reference)
        for i, tokens in shedded.items():
            assert tokens == reference[i]


# ---- deadlines ---------------------------------------------------------------


class TestDeadlines:
    def test_deadline_error_maps_kind_to_status(self):
        assert DeadlineExceededError("x", kind="ttft").http_status == 408
        assert DeadlineExceededError("x", kind="total").http_status == 504
        assert DeadlineExceededError("x").code == "deadline_exceeded"
        with pytest.raises(ValueError, match="deadline kind"):
            DeadlineExceededError("x", kind="sideways")

    def test_total_deadline_expires_queued_request(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(tiny_tokenizer, max_concurrency=1)
        server = SpeContextServer(tiny_gqa_model, config)
        server.add_request(filler_request(tiny_tokenizer, seed=1, max_new=8))
        doomed = filler_request(
            tiny_tokenizer, seed=2, max_new=8, total_deadline_s=4.0
        )
        rid = server.add_request(doomed)
        outputs = server.run()
        assert rid not in {o.request_id for o in outputs}
        failures = server.pop_failures()
        assert [f.request_id for f in failures] == [rid]
        failure = failures[0]
        assert failure.code == "deadline_exceeded"
        assert failure.http_status == 504
        assert pool_fully_released(server)
        # Terminal error stream event: token_id -1, finished, error code.
        errors = [e for e in server.pop_stream_events() if e.error is not None]
        assert len(errors) == 1
        assert errors[0].request_id == rid
        assert errors[0].token_id == -1
        assert errors[0].finished
        assert errors[0].error == "deadline_exceeded"
        # Metered as rejected, not finished.
        assert rid in {r.request_id for r in server.meter.rejected}

    def test_ttft_deadline_maps_to_408(self, tiny_gqa_model, tiny_tokenizer):
        config = engine_config(tiny_tokenizer, max_concurrency=1)
        server = SpeContextServer(tiny_gqa_model, config)
        server.add_request(filler_request(tiny_tokenizer, seed=1, max_new=12))
        rid = server.add_request(
            filler_request(tiny_tokenizer, seed=2, ttft_deadline_s=2.0)
        )
        server.run()
        failures = server.pop_failures()
        assert [f.request_id for f in failures] == [rid]
        assert failures[0].http_status == 408

    def test_ttft_deadline_ignored_after_first_token(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(
            tiny_gqa_model, engine_config(tiny_tokenizer)
        )
        rid = server.add_request(
            filler_request(
                tiny_tokenizer, seed=3, max_new=8, ttft_deadline_s=3.0
            )
        )
        outputs = server.run()
        assert {o.request_id for o in outputs} == {rid}
        assert server.pop_failures() == []

    def test_feasible_deadline_finishes(self, tiny_gqa_model, tiny_tokenizer):
        server = SpeContextServer(
            tiny_gqa_model, engine_config(tiny_tokenizer)
        )
        rid = server.add_request(
            filler_request(
                tiny_tokenizer, seed=4, max_new=4, total_deadline_s=50.0
            )
        )
        outputs = server.run()
        assert [o.request_id for o in outputs] == [rid]
        assert server.pop_failures() == []

    def test_expiry_schedule_is_deterministic(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        def run():
            config = engine_config(tiny_tokenizer, max_concurrency=2)
            server = SpeContextServer(tiny_gqa_model, config)
            for i in range(6):
                server.add_request(
                    filler_request(
                        tiny_tokenizer, seed=200 + i, max_new=6,
                        total_deadline_s=9.0,
                    )
                )
            outputs = server.run()
            return (
                [(o.request_id, o.token_ids) for o in outputs],
                [(f.request_id, f.code, f.clock)
                 for f in server.pop_failures()],
            )

        first, second = run(), run()
        assert first == second
        assert first[1]  # the workload does push someone past the deadline

    def test_expired_request_frees_blocks_under_pressure(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(
            tiny_tokenizer, budget=48, max_concurrency=4
        )
        server = SpeContextServer(tiny_gqa_model, config)
        for i in range(6):
            server.add_request(
                filler_request(
                    tiny_tokenizer, seed=300 + i, n=16, max_new=6,
                    total_deadline_s=6.0,
                )
            )
        server.run()
        assert pool_fully_released(server)


# ---- executor failure plumbing ----------------------------------------------


class TestExecutorFailures:
    @pytest.mark.parametrize("executor_cls", EXECUTORS)
    def test_deadline_failures_translate_to_global_ids(
        self, executor_cls, tiny_gqa_model, tiny_tokenizer
    ):
        executor = executor_cls(
            tiny_gqa_model,
            engine_config(tiny_tokenizer, max_concurrency=1),
            ClusterConfig(n_replicas=1, router="round_robin"),
        )
        try:
            executor.add_request(
                filler_request(tiny_tokenizer, seed=1, max_new=8)
            )
            doomed = executor.add_request(
                filler_request(
                    tiny_tokenizer, seed=2, max_new=8, total_deadline_s=4.0
                )
            )
            executor.run()
            failures = executor.pop_failures()
            assert [f.request_id for f in failures] == [doomed]
            assert failures[0].code == "deadline_exceeded"
            # Exactly once: a second drain returns nothing and the gid is
            # no longer in flight (can never be resubmitted).
            assert executor.pop_failures() == []
            assert not executor.has_unfinished
        finally:
            executor.shutdown()

    def test_failed_request_never_resubmitted_after_kill(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        executor = InProcessExecutor(
            tiny_gqa_model,
            engine_config(tiny_tokenizer, max_concurrency=1),
            ClusterConfig(n_replicas=2, router="round_robin"),
        )
        try:
            gids = [
                executor.add_request(
                    filler_request(
                        tiny_tokenizer, seed=10 + i, max_new=8,
                        total_deadline_s=4.0 if i == 1 else None,
                    )
                )
                for i in range(2)
            ]
            while executor.has_unfinished and not executor.pop_failures():
                executor.step()
            # The deadline failure has surfaced; now kill its old worker.
            executor.kill_worker(executor.worker_of(gids[0]) if gids[0]
                                 in executor._inflight else 0)
            executor.run()
            resubmitted = {gid for gid, _ in executor.resubmissions}
            assert gids[1] not in resubmitted
        finally:
            executor.shutdown()


# ---- watchdog and pipe retry -------------------------------------------------


class TestWatchdogAndPipe:
    def test_slow_worker_survives_watchdog(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        executor = MultiprocExecutor(
            tiny_gqa_model,
            engine_config(tiny_tokenizer),
            ClusterConfig(
                n_replicas=1, router="round_robin", heartbeat_s=1.0
            ),
        )
        try:
            executor.add_request(filler_request(tiny_tokenizer, seed=1))
            executor.inject_fault(0, "slow_step", duration_s=2.5)
            outputs = executor.run()
            assert len(outputs) == 1
            assert executor.n_alive == 1
            assert executor.resubmissions == []
        finally:
            executor.shutdown()

    def test_stalled_worker_is_quarantined_and_recovered(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        executor = MultiprocExecutor(
            tiny_gqa_model,
            engine_config(tiny_tokenizer),
            ClusterConfig(
                n_replicas=2, router="round_robin", heartbeat_s=1.0
            ),
        )
        try:
            gids = [
                executor.add_request(filler_request(tiny_tokenizer, seed=i))
                for i in (1, 2)
            ]
            executor.inject_fault(0, "stall", duration_s=4.0)
            outputs = executor.run()
            assert sorted(o.request_id for o in outputs) == sorted(gids)
            assert executor.n_alive == 1
            assert executor.degraded
            assert len(executor.resubmissions) >= 1
        finally:
            executor.shutdown()

    def test_pipe_drops_within_budget_are_absorbed(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        executor = MultiprocExecutor(
            tiny_gqa_model,
            engine_config(tiny_tokenizer),
            ClusterConfig(
                n_replicas=1, router="round_robin", pipe_retries=2,
                pipe_retry_backoff_s=0.01,
            ),
        )
        try:
            executor.add_request(filler_request(tiny_tokenizer, seed=1))
            executor.inject_fault(0, "pipe_drop", drops=2)
            outputs = executor.run()
            assert len(outputs) == 1
            assert executor.n_alive == 1
        finally:
            executor.shutdown()

    def test_pipe_drops_beyond_budget_quarantine(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        executor = MultiprocExecutor(
            tiny_gqa_model,
            engine_config(tiny_tokenizer),
            ClusterConfig(
                n_replicas=2, router="round_robin", pipe_retries=1,
                pipe_retry_backoff_s=0.01,
            ),
        )
        try:
            gid = executor.add_request(filler_request(tiny_tokenizer, seed=1))
            executor.inject_fault(
                executor.worker_of(gid), "pipe_drop", drops=5
            )
            outputs = executor.run()
            assert [o.request_id for o in outputs] == [gid]
            assert executor.degraded
        finally:
            executor.shutdown()


# ---- aborts during chunked prefill and speculation ---------------------------


class TestAbortRelease:
    def test_abort_mid_chunked_prefill_frees_blocks(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(
            tiny_tokenizer, prefill_chunk_tokens=4, block_size=4
        )
        server = SpeContextServer(tiny_gqa_model, config)
        rid = server.add_request(
            filler_request(tiny_tokenizer, seed=1, n=30, max_new=4)
        )
        server.step()  # first chunk lands; prefill is mid-flight
        session = server._active[0]
        assert session.prefill_pos < session.prompt_len
        assert server.abort(rid)
        assert pool_fully_released(server)
        assert not server.has_unfinished
        # The pool stays usable: a fresh request runs to completion.
        rid2 = server.add_request(
            filler_request(tiny_tokenizer, seed=2, n=30, max_new=4)
        )
        assert [o.request_id for o in server.run()] == [rid2]

    def test_abort_mid_speculation_releases_reservations(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(tiny_tokenizer, spec_decode_k=2)
        server = SpeContextServer(tiny_gqa_model, config)
        rid = server.add_request(
            filler_request(tiny_tokenizer, seed=3, n=12, max_new=12)
        )
        for _ in range(3):  # prefill + a few speculative decode waves
            server.step()
        stats = server.pool.stats
        assert stats.spec_reserved > 0  # speculation actually ran
        assert server.abort(rid)
        # Every reservation was resolved: promoted or released, none leaked.
        assert stats.spec_reserved == stats.spec_promoted + stats.spec_released
        assert pool_fully_released(server)

    def test_executor_abort_mid_chunked_prefill(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        executor = InProcessExecutor(
            tiny_gqa_model,
            engine_config(tiny_tokenizer, prefill_chunk_tokens=4),
            ClusterConfig(n_replicas=2, router="round_robin"),
        )
        try:
            keep = executor.add_request(
                filler_request(tiny_tokenizer, seed=1, max_new=4)
            )
            victim = executor.add_request(
                filler_request(tiny_tokenizer, seed=2, n=30, max_new=4)
            )
            executor.step()
            assert executor.abort(victim)
            outputs = executor.run()
            assert [o.request_id for o in outputs] == [keep]
        finally:
            executor.shutdown()


# ---- cluster frontend merge --------------------------------------------------


class TestClusterFailures:
    def test_cluster_pop_failures_merges_replicas(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        frontend = ClusterFrontend(
            tiny_gqa_model,
            engine_config(tiny_tokenizer, max_concurrency=1),
            ClusterConfig(n_replicas=2, router="round_robin"),
        )
        rids = []
        for i in range(4):
            rids.append(frontend.add_request(
                filler_request(
                    tiny_tokenizer, seed=20 + i, max_new=8,
                    total_deadline_s=4.0 if i >= 2 else None,
                )
            ))
        while frontend.has_unfinished:
            frontend.step()
        failures = frontend.pop_failures()
        assert sorted(f.request_id for f in failures) == rids[2:]
        assert frontend.pop_failures() == []
        assert not frontend.shedding


# ---- HTTP robustness surfaces ------------------------------------------------


@contextlib.asynccontextmanager
async def running_server(model, tokenizer, config=None, n_workers=1):
    executor = InProcessExecutor(
        model,
        config or engine_config(tokenizer),
        ClusterConfig(n_replicas=n_workers, router="round_robin"),
    )
    server = HttpServer(AsyncEngine(executor), tokenizer)
    await server.start("127.0.0.1", 0)
    try:
        yield server, server.addresses[0][1]
    finally:
        await server.stop()
        await server.engine.close()


async def raw_request(port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionResetError, BrokenPipeError):
        await writer.wait_closed()
    return response


def http_post(path: str, obj) -> bytes:
    body = json.dumps(obj).encode()
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def http_get(path: str) -> bytes:
    return f"GET {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n".encode()


def parse_response(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


async def saturate(server, max_new_tokens=1024):
    """Deterministically fill a ``max_concurrency=1`` server.

    Submits one long request and waits for its first token (provably
    active and generating), then parks a second in the waiting queue.
    Until the first finishes — thousands of steps away — the queue stays
    full, so probes observe overload without sleeping. Returns the two
    global ids; callers abort them when done.
    """

    def slow_request():
        return GenerationRequest(
            prompt_ids=np.array([2, 3, 4], dtype=np.int64),
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
        )

    active, queue = await server.engine.submit(slow_request())
    kind, _ = await queue.get()
    assert kind == "token"
    waiting, _ = await server.engine.submit(slow_request())
    return active, waiting


class TestHttpRobustness:
    def test_overloaded_maps_to_429_with_retry_after(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(
            tiny_tokenizer,
            max_concurrency=1,
            admission="queue_depth",
            admission_opts={"max_waiting": 1},
        )

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer, config
            ) as (server, port):
                # One request active, one parked in the waiting queue —
                # the next submission must be shed.
                gids = await saturate(server)
                probe = {"prompt": [2, 3, 4], "max_tokens": 1}
                response = parse_response(await raw_request(
                    port, http_post("/v1/completions", probe)
                ))
                for gid in gids:
                    await server.engine.abort(gid)
                return response

        status, headers, body = asyncio.run(scenario())
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        error = json.loads(body)["error"]
        assert error["code"] == "overloaded"
        assert error["type"] == "overloaded_error"

    def test_total_deadline_maps_to_504(self, tiny_gqa_model, tiny_tokenizer):
        config = engine_config(tiny_tokenizer, max_concurrency=1)

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer, config
            ) as (server, port):
                slow = {"prompt": [2, 3, 4], "max_tokens": 16}
                doomed = {
                    "prompt": [2, 3, 4],
                    "max_tokens": 16,
                    "total_deadline_s": 4,
                }
                task1 = asyncio.create_task(
                    raw_request(port, http_post("/v1/completions", slow))
                )
                await asyncio.sleep(0.2)
                response = await raw_request(
                    port, http_post("/v1/completions", doomed)
                )
                await task1
                return parse_response(response)

        status, _, body = asyncio.run(scenario())
        assert status == 504
        error = json.loads(body)["error"]
        assert error["code"] == "deadline_exceeded"
        assert error["type"] == "timeout_error"

    def test_stream_deadline_emits_error_chunk_then_done(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(tiny_tokenizer, max_concurrency=1)

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer, config
            ) as (server, port):
                slow = {"prompt": [2, 3, 4], "max_tokens": 16}
                doomed = {
                    "prompt": [2, 3, 4],
                    "max_tokens": 16,
                    "total_deadline_s": 4,
                    "stream": True,
                }
                task1 = asyncio.create_task(
                    raw_request(port, http_post("/v1/completions", slow))
                )
                await asyncio.sleep(0.2)
                response = await raw_request(
                    port, http_post("/v1/completions", doomed)
                )
                await task1
                return response

        raw = asyncio.run(scenario())
        status, _, body = parse_response(raw)
        assert status == 200  # headers were already out; error rides the SSE
        blocks = [b for b in body.split(b"\n\n") if b.startswith(b"data: ")]
        assert blocks[-1] == b"data: [DONE]"
        last = json.loads(blocks[-2][len(b"data: "):])
        assert last["error"]["code"] == "deadline_exceeded"
        assert last["choices"][0]["finish_reason"] == "deadline_exceeded"

    def test_healthz_reports_shedding(self, tiny_gqa_model, tiny_tokenizer):
        config = engine_config(
            tiny_tokenizer,
            max_concurrency=1,
            admission="queue_depth",
            admission_opts={"max_waiting": 1},
        )

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer, config
            ) as (server, port):
                _, _, idle = parse_response(
                    await raw_request(port, http_get("/healthz"))
                )
                # One request active, one waiting: the queue-depth
                # policy is shedding until the active one finishes.
                gids = await saturate(server)
                _, _, raw = parse_response(
                    await raw_request(port, http_get("/healthz"))
                )
                busy = json.loads(raw)
                for gid in gids:
                    await server.engine.abort(gid)
                return json.loads(idle), busy

        idle, busy = asyncio.run(scenario())
        assert idle["shedding"] is False
        assert busy["shedding"] is True
        assert busy["status"] == "ok"

    def test_stats_answers_degraded_with_quarantined_worker(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer, n_workers=2
            ) as (server, port):
                await server.engine.call(
                    server.engine.executor.kill_worker, 0
                )
                status, _, body = parse_response(
                    await raw_request(port, http_get("/stats"))
                )
                return status, json.loads(body)

        status, stats = asyncio.run(scenario())
        assert status == 200
        assert stats["degraded"] is True
        assert stats["alive_workers"] == 1
        assert "rejected" in stats
