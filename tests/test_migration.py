"""Live KV migration tests: chain invariants, bit-identity matrix, chaos.

The migration contract under test:

- ``PagedKVPool.export_chain`` is read-only on the source pool, and an
  ``import_chain`` round-trip publishes blocks indistinguishable from
  locally published entries (audit-visible, refcount-exact, evictable,
  deduplicated on re-import);
- ``export_session``/``import_session`` moves a session wholesale, so
  every migrated request's token stream is bit-identical to a solo run
  — across all 8 KV policies, batched and sequential decode, the
  cluster frontend and both executors (the ``export_kv``/``import_kv``
  worker ops, including the multiprocess pickle path);
- pool refcounts and the free stack stay exact while migrations
  interleave with preemptions (audited after every cluster step), and
  a chaos kill of the migration *source* recovers its remaining work
  without disturbing already-migrated streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ClusterConfig,
    EngineConfig,
    GenerationRequest,
    SamplingParams,
)
from repro.kvcache.pool import BlockTable, PagedKVPool
from repro.serving import ClusterFrontend, SpeContextServer, poisson_trace
from repro.serving.engine import InProcessExecutor, MultiprocExecutor
from repro.serving.trace import replay_trace_cluster, solo_token_streams

ALL_NAMES = (
    "specontext", "quest", "h2o", "shadowkv", "clusterkv",
    "streaming", "sliding", "full",
)

EXECUTORS = (InProcessExecutor, MultiprocExecutor)

BLOCK = 4


def engine_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def shared_prefix_requests(
    tokenizer, policy: str, n: int = 4, prefix_len: int = 24, max_new: int = 5
) -> list[GenerationRequest]:
    """n requests sharing a system prefix ahead of unique suffixes."""
    prefix_rng = np.random.default_rng(7)
    prefix = [int(t) for t in tokenizer.random_filler_ids(prefix_rng, prefix_len)]
    requests = []
    for i in range(n):
        rng = np.random.default_rng(300 + i)
        suffix = [int(t) for t in tokenizer.random_filler_ids(rng, 8 + i)]
        requests.append(GenerationRequest(
            np.array([tokenizer.bos_id] + prefix + suffix),
            sampling=SamplingParams(max_new_tokens=max_new),
            policy=policy,
            budget=48,
        ))
    return requests


def policy_spread_requests(tokenizer, max_new: int = 4) -> list[GenerationRequest]:
    """One shared-prefix request per KV policy (the 8-policy matrix row)."""
    requests = []
    for i, name in enumerate(ALL_NAMES):
        request = shared_prefix_requests(tokenizer, name, n=i + 1)[i]
        request.sampling = SamplingParams(max_new_tokens=max_new)
        requests.append(request)
    return requests


def clone(request: GenerationRequest) -> GenerationRequest:
    return GenerationRequest(
        request.prompt_ids.copy(),
        sampling=request.sampling,
        policy=request.policy,
        budget=request.budget,
        priority=request.priority,
    )


# ---- pool block-chain export/import ------------------------------------------


def payload_for(i: int):
    keys = np.full((1, 1, BLOCK, 2), float(i + 1))
    values = np.full((1, 1, BLOCK, 2), -float(i + 1))
    return [(keys, values)]


def published_chain(n_blocks: int = 8, chain_blocks: int = 3):
    """A pool holding one sequence whose first ``chain_blocks`` are published."""
    pool = PagedKVPool(n_blocks, block_size=BLOCK)
    token_ids = np.arange(1, chain_blocks * BLOCK + 1, dtype=np.int64)
    table = BlockTable()
    for i in range(chain_blocks):
        table.block_ids.append(pool.allocate())
        pool.write_block(table, i, payload_for(i))
    pool.publish_prefix(token_ids, table, chain_blocks)
    return pool, table, token_ids


class TestChainExportImport:
    def test_export_is_read_only_on_the_source(self):
        pool, table, token_ids = published_chain()
        free_before = list(pool._free)
        refs_before = [pool.ref_count(b) for b in range(pool.capacity)]
        index_before = list(pool._prefix_index.items())
        export = pool.export_chain(token_ids, table, 3)
        assert export.n_blocks == 3
        assert list(pool._free) == free_before
        assert [pool.ref_count(b) for b in range(pool.capacity)] == refs_before
        assert list(pool._prefix_index.items()) == index_before
        pool.audit(tables=[table])
        # Deep copies: mutating the export never touches resident payloads.
        export.payloads[0][0][0][:] = 0.0
        assert np.all(pool.read_block(table.block_ids[0])[0][0] == 1.0)

    def test_roundtrip_publishes_audit_exact_blocks(self):
        pool, table, token_ids = published_chain()
        export = pool.export_chain(token_ids, table, 3)
        dest = PagedKVPool(8, block_size=BLOCK)
        assert dest.import_chain(export) == 3
        dest.audit(tables=[])
        assert dest.n_used == 3
        assert dest.longest_prefix_match(token_ids) == 3 * BLOCK
        chain = dest.match_prefix(token_ids, token_ids.size)
        assert len(chain) == 3
        for i, block_id in enumerate(chain):
            assert dest.ref_count(block_id) == 1  # cache's own hold
            got = dest.read_block(block_id)
            want = payload_for(i)
            assert np.array_equal(got[0][0], want[0][0])
            assert np.array_equal(got[0][1], want[0][1])

    def test_reimport_deduplicates(self):
        pool, table, token_ids = published_chain()
        export = pool.export_chain(token_ids, table, 3)
        dest = PagedKVPool(8, block_size=BLOCK)
        assert dest.import_chain(export) == 3
        assert dest.import_chain(export) == 0
        assert dest.n_used == 3
        dest.audit(tables=[])

    def test_import_under_pressure_evicts_lru_then_stops(self):
        pool, table, token_ids = published_chain()
        export = pool.export_chain(token_ids, table, 3)
        # Imported blocks are cache-only (evictable), so a full but
        # unreferenced pool keeps importing by recycling its own LRU
        # entries — ending with the *latest* blocks resident and the
        # prefix chain broken at the evicted head.
        small = PagedKVPool(2, block_size=BLOCK)
        assert small.import_chain(export) == 3
        assert small.n_used == 2
        assert small.stats.prefix_evictions == 1
        assert small.longest_prefix_match(token_ids) == 0
        small.audit(tables=[])
        # Table-held blocks pin the pool: the import stops quietly.
        pinned = PagedKVPool(2, block_size=BLOCK)
        held = BlockTable()
        held.block_ids.append(pinned.allocate())
        held.block_ids.append(pinned.allocate())
        assert pinned.import_chain(export) == 0
        pinned.audit(tables=[held])

    def test_block_size_mismatch_rejected(self):
        pool, table, token_ids = published_chain()
        export = pool.export_chain(token_ids, table, 3)
        with pytest.raises(ValueError, match="block_size"):
            PagedKVPool(4, block_size=2 * BLOCK).import_chain(export)

    def test_export_stops_at_first_payloadless_block(self):
        pool, table, token_ids = published_chain()
        # A trailing block the sequence holds but never wrote through
        # write_block (the in-progress tail) carries no transferable data.
        table.block_ids.append(pool.allocate())
        export = pool.export_chain(token_ids, table, 4)
        assert export.n_blocks == 3
        pool.free_table(table)
        pool.audit(tables=[])

    def test_imported_blocks_are_evictable_and_drain_to_empty(self):
        pool, table, token_ids = published_chain()
        export = pool.export_chain(token_ids, table, 3)
        # Source hand-off complete: the ordinary free path drains it.
        pool.free_table(table)
        assert pool.evict_all_unreferenced() == 3
        assert pool.n_used == 0
        assert pool.stats.allocated == pool.stats.freed
        pool.audit(tables=[])
        dest = PagedKVPool(8, block_size=BLOCK)
        dest.import_chain(export)
        assert dest.evict_all_unreferenced() == 3
        assert dest.n_used == 0
        dest.audit(tables=[])


# ---- server-level session round-trip -----------------------------------------


class TestSessionRoundTrip:
    def test_export_import_roundtrip_audits_and_matches_solo(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(tiny_tokenizer)
        requests = shared_prefix_requests(
            tiny_tokenizer, "specontext", n=3, max_new=8
        )
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        source = SpeContextServer(tiny_gqa_model, config)
        dest = SpeContextServer(tiny_gqa_model, config)
        for request in requests:
            source.add_request(clone(request))
        for _ in range(3):
            source.step()
        export = source.export_session(1)
        assert export is not None
        assert export.request.request_id == 1
        source.audit_pool()  # the drained table left no dangling refs
        assert source.migrated_out == 1
        # The published prefix chain travels with the session and warms
        # the destination's cache before the session even resumes.
        assert export.chain is not None and export.chain.n_blocks > 0
        dest.import_session(export)
        dest.audit_pool()
        assert dest.migrated_in == 1
        assert (
            dest.pool.longest_prefix_match(requests[1].prompt_ids)
            >= dest.pool.block_size
        )
        with pytest.raises(ValueError, match="already in flight"):
            dest.import_session(export)
        source.run()
        dest.run()
        merged = sorted(
            source.outputs + dest.outputs, key=lambda o: o.request_id
        )
        assert [o.token_ids for o in merged] == solo
        source.audit_pool()
        dest.audit_pool()

    def test_export_of_unknown_or_finished_session_is_none(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(tiny_gqa_model, engine_config(tiny_tokenizer))
        assert server.export_session(0) is None
        request = shared_prefix_requests(tiny_tokenizer, "streaming", n=1)[0]
        rid = server.add_request(request)
        server.run()
        assert server.export_session(rid) is None

    def test_waiting_session_migrates_before_first_step(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """A queued session that never ran still round-trips exactly."""
        config = engine_config(tiny_tokenizer, max_concurrency=1)
        requests = shared_prefix_requests(tiny_tokenizer, "quest", n=2)
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        source = SpeContextServer(tiny_gqa_model, config)
        dest = SpeContextServer(tiny_gqa_model, config)
        for request in requests:
            source.add_request(clone(request))
        source.step()  # request 0 active; request 1 still waiting
        export = source.export_session(1)
        assert export is not None
        dest.import_session(export)
        source.run()
        dest.run()
        merged = sorted(
            source.outputs + dest.outputs, key=lambda o: o.request_id
        )
        assert [o.token_ids for o in merged] == solo
        source.audit_pool()
        dest.audit_pool()


# ---- refcount/free-stack exactness under migration + preemption --------------


class TestMidMigrationPreemption:
    def test_pools_stay_exact_while_migrations_meet_preemptions(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Rebalance passes interleave with pool-pressure preemptions; the
        full table-cross-checked audit runs after every cluster step and
        both pools drain to exactly empty, so no migration path leaks or
        double-frees a block."""
        requests = policy_spread_requests(tiny_tokenizer, max_new=40)
        config = engine_config(tiny_tokenizer)
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        probe = SpeContextServer(tiny_gqa_model, config).pool
        prompt_blocks = max(
            probe.blocks_for_tokens(r.prompt_len) for r in requests
        )
        pressured = engine_config(
            tiny_tokenizer, pool_blocks=2 * prompt_blocks + 1
        )
        frontend = ClusterFrontend(
            tiny_gqa_model,
            pressured,
            ClusterConfig(
                n_replicas=2,
                router="prefix_affinity",
                stickiness_tokens=8,
                rebalance_every=1,
                rebalance_ratio=1.0,
                max_migrations_per_pass=2,
            ),
        )
        trace = poisson_trace(
            np.random.default_rng(9), [clone(r) for r in requests], 1.0
        )
        outputs = replay_trace_cluster(
            frontend,
            trace,
            replica_observer=lambda i, server: server.audit_pool(),
        )
        assert frontend.migrations, "no migration ever triggered"
        assert {m.reason for m in frontend.migrations} == {"rebalance"}
        assert len(frontend.preemption_log) > 0, "no preemption pressure"
        assert [o.token_ids for o in outputs] == solo
        for server in frontend.replicas:
            server.audit_pool()
            server.pool.evict_all_unreferenced()
            assert server.pool.n_used == 0
            assert server.pool.stats.allocated == server.pool.stats.freed


# ---- chaos: kill the migration source ----------------------------------------


class TestChaosKillSource:
    @pytest.mark.parametrize("executor_cls", EXECUTORS)
    def test_source_death_after_handoffs_keeps_streams_identical(
        self, tiny_gqa_model, tiny_tokenizer, executor_cls
    ):
        """Kill the prefill worker right after its first handoffs land:
        already-migrated sessions keep decoding (their KV moved), the
        still-resident remainder replays deterministically on the mixed
        survivor, and every stream matches its solo run exactly once.
        ``max_concurrency=2`` keeps a queue on the prefill worker so the
        kill lands while it still holds un-prefilled work."""
        config = engine_config(tiny_tokenizer, max_concurrency=2)
        requests = policy_spread_requests(tiny_tokenizer, max_new=6)
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        cluster = ClusterConfig(
            n_replicas=3, roles=("prefill", "decode", "mixed")
        )
        with executor_cls(tiny_gqa_model, config, cluster) as executor:
            gids = [executor.add_request(clone(r)) for r in requests]
            tokens: dict[int, list[int]] = {gid: [] for gid in gids}
            killed = False
            while executor.has_unfinished:
                executor.step()
                for event in executor.pop_stream_events():
                    if event.error is None:
                        tokens[event.request_id].append(event.token_id)
                if not killed and executor.migrations:
                    source = executor.migrations[0].source
                    assert source == 0  # the only prefill-role worker
                    executor.kill_worker(source)
                    killed = True
            assert killed, "no handoff ever happened"
            assert all(
                m.reason == "prefill_handoff" for m in executor.migrations
            )
            assert executor.resubmissions  # the source died holding work
            assert [tokens[gid] for gid in gids] == solo
            assert executor.pop_failures() == []
            assert executor.audit_pools() == 2  # both survivors exact


# ---- bit-identity matrix: policies x decode mode x surface -------------------


class TestMigrationBitIdentityMatrix:
    """Every policy, batched and sequential decode, every frontend."""

    @pytest.mark.parametrize(
        "batched", (True, False), ids=("batched", "sequential")
    )
    @pytest.mark.parametrize("policy", ALL_NAMES)
    def test_disaggregated_handoff_streams_identical(
        self, tiny_gqa_model, tiny_tokenizer, policy, batched
    ):
        config = engine_config(tiny_tokenizer, batched_decode=batched)
        requests = shared_prefix_requests(tiny_tokenizer, policy, n=4)
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        frontend = ClusterFrontend(
            tiny_gqa_model,
            config,
            ClusterConfig(n_replicas=2, roles=("prefill", "decode")),
        )
        for request in requests:
            frontend.add_request(clone(request))
        outputs = frontend.run()
        assert len(frontend.migrations) == len(requests)
        assert all(
            m.reason == "prefill_handoff" for m in frontend.migrations
        )
        for output in outputs:
            assert frontend.replica_of(output.request_id) == 1
        assert [o.token_ids for o in outputs] == solo
        for server in frontend.replicas:
            server.audit_pool()

    @pytest.mark.parametrize(
        "batched", (True, False), ids=("batched", "sequential")
    )
    @pytest.mark.parametrize("executor_cls", EXECUTORS)
    def test_executor_handoff_all_policies(
        self, tiny_gqa_model, tiny_tokenizer, executor_cls, batched
    ):
        """The export_kv/import_kv ops (and, multiprocess, the pickled
        chain riding the worker pipe) preserve every policy's stream."""
        config = engine_config(tiny_tokenizer, batched_decode=batched)
        requests = policy_spread_requests(tiny_tokenizer)
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        cluster = ClusterConfig(n_replicas=2, roles=("prefill", "decode"))
        with executor_cls(tiny_gqa_model, config, cluster) as executor:
            gids = [executor.add_request(clone(r)) for r in requests]
            tokens: dict[int, list[int]] = {gid: [] for gid in gids}
            while executor.has_unfinished:
                executor.step()
                for event in executor.pop_stream_events():
                    if event.error is None:
                        tokens[event.request_id].append(event.token_id)
            assert executor.migrations
            assert all(
                m.reason == "prefill_handoff" for m in executor.migrations
            )
            assert [tokens[gid] for gid in gids] == solo
            assert executor.audit_pools() == 2

    def test_manual_migrate_round_trip_and_edge_cases(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        config = engine_config(tiny_tokenizer)
        requests = shared_prefix_requests(
            tiny_tokenizer, "shadowkv", n=2, max_new=10
        )
        solo = solo_token_streams(tiny_gqa_model, config, requests, clone)
        frontend = ClusterFrontend(
            tiny_gqa_model,
            config,
            ClusterConfig(n_replicas=2, router="round_robin"),
        )
        for request in requests:
            frontend.add_request(clone(request))
        frontend.step()
        frontend.step()
        assert frontend.migrate(0, 1) is True  # replica 0 -> 1, mid-decode
        frontend.step()
        assert frontend.migrate(0, 0) is True  # and back again
        assert frontend.migrate(0, 0) is False  # already there
        assert frontend.migrate(99, 1) is False  # unknown id
        with pytest.raises(IndexError, match="out of range"):
            frontend.migrate(1, 5)
        outputs = frontend.run()
        assert [o.token_ids for o in outputs] == solo
        moved = [m for m in frontend.migrations if m.reason == "manual"]
        assert [(m.source, m.target) for m in moved] == [(0, 1), (1, 0)]
        for server in frontend.replicas:
            server.audit_pool()
