"""Tests for the asynchronous prefetch dataflows (paper Sec. 5, Fig. 7)."""

from __future__ import annotations

import pytest

from repro.core.prefetch import AsyncPrefetcher, DataflowKind
from repro.hardware.spec import CLOUD_A800, EDGE_RTX4060


@pytest.fixture
def prefetcher():
    return AsyncPrefetcher(CLOUD_A800)


def timings(prefetcher, kind, n_layers=8, compute_ms=1.0, bytes_per_layer=50e6,
            retrieval_ms=0.2, pre_ms=0.3):
    return prefetcher.step_timings(
        kind,
        [compute_ms * 1e-3] * n_layers,
        [bytes_per_layer] * n_layers,
        retrieval_s_per_layer=retrieval_ms * 1e-3,
        pre_retrieval_s=pre_ms * 1e-3,
    )


class TestDataflows:
    def test_layer_lists_must_match(self, prefetcher):
        with pytest.raises(ValueError):
            prefetcher.step_timings(DataflowKind.SYNC_FETCH, [1.0], [1.0, 2.0])

    def test_sync_fetch_serializes_everything(self, prefetcher):
        t = timings(prefetcher, DataflowKind.SYNC_FETCH)
        # No overlap: total >= compute + transfer + retrieval.
        assert t.total_s >= t.compute_s + t.transfer_s + t.retrieval_s

    def test_elastic_prefetch_overlaps_transfer(self, prefetcher):
        sync = timings(prefetcher, DataflowKind.SYNC_FETCH)
        elastic = timings(prefetcher, DataflowKind.ELASTIC_PREFETCH)
        assert elastic.total_s < sync.total_s

    def test_elastic_hides_transfer_behind_compute(self, prefetcher):
        """With small transfers, the step is compute-bound plus the head."""
        t = timings(prefetcher, DataflowKind.ELASTIC_PREFETCH,
                    bytes_per_layer=1e4)
        assert t.total_s == pytest.approx(
            t.compute_s + t.retrieval_s, rel=0.05
        )

    def test_async_prefetch_beats_sync(self, prefetcher):
        sync = timings(prefetcher, DataflowKind.SYNC_FETCH)
        asyn = timings(prefetcher, DataflowKind.ASYNC_PREFETCH)
        assert asyn.total_s <= sync.total_s

    def test_full_prefetch_transfer_on_critical_path(self, prefetcher):
        t = timings(prefetcher, DataflowKind.FULL_PREFETCH, bytes_per_layer=500e6)
        assert t.total_s >= t.transfer_s

    def test_ordering_of_the_five_dataflows(self, prefetcher):
        """Elastic <= async/value <= sync for identical inputs."""
        results = {
            kind: timings(prefetcher, kind).total_s for kind in DataflowKind
        }
        assert (
            results[DataflowKind.ELASTIC_PREFETCH]
            <= results[DataflowKind.ASYNC_PREFETCH]
        )
        assert results[DataflowKind.ASYNC_PREFETCH] <= results[DataflowKind.SYNC_FETCH]

    def test_sync_overhead_scales_with_depth(self, prefetcher):
        """Challenge 1: per-layer sync cost grows linearly with model depth."""
        shallow = timings(prefetcher, DataflowKind.SYNC_FETCH, n_layers=4)
        deep = timings(prefetcher, DataflowKind.SYNC_FETCH, n_layers=16)
        assert deep.sync_s == pytest.approx(4 * shallow.sync_s)
        assert deep.retrieval_s == pytest.approx(4 * shallow.retrieval_s)

    def test_overhead_fraction_bounds(self, prefetcher):
        t = timings(prefetcher, DataflowKind.SYNC_FETCH)
        assert 0.0 <= t.overhead_fraction < 1.0

    def test_zero_transfer_keeps_flows_close(self, prefetcher):
        """Without transfers, every dataflow is compute (+retrieval) bound."""
        for kind in (DataflowKind.FULL_PREFETCH, DataflowKind.ELASTIC_PREFETCH):
            t = timings(prefetcher, kind, bytes_per_layer=0.0, retrieval_ms=0.0,
                        pre_ms=0.0)
            assert t.total_s == pytest.approx(t.compute_s, rel=0.05)


class TestHardwareSensitivity:
    def test_slower_pcie_hurts_sync_more(self):
        cloud = AsyncPrefetcher(CLOUD_A800)
        edge = AsyncPrefetcher(EDGE_RTX4060)
        cloud_t = timings(cloud, DataflowKind.SYNC_FETCH)
        edge_t = timings(edge, DataflowKind.SYNC_FETCH)
        assert edge_t.transfer_s > cloud_t.transfer_s
