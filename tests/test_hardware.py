"""Tests for the hardware substrate: specs, timing, memory ledger, streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    CLOUD_A800,
    EDGE_RTX4060,
    EDGE_RTX4060_4GB,
    LatencyModel,
    MemoryLedger,
    MemoryTier,
    OpCost,
    OutOfMemoryError,
    StreamOp,
    StreamSimulator,
)
from repro.utils import GB


class TestSpecs:
    def test_cloud_bigger_than_edge(self):
        assert CLOUD_A800.gpu_memory_bytes > EDGE_RTX4060.gpu_memory_bytes
        assert CLOUD_A800.gpu_flops > EDGE_RTX4060.gpu_flops

    def test_scaled_memory(self):
        assert EDGE_RTX4060_4GB.gpu_memory_bytes == 4 * GB
        assert EDGE_RTX4060_4GB.pcie_bandwidth == EDGE_RTX4060.pcie_bandwidth


class TestLatencyModel:
    def test_roofline_compute_bound(self):
        model = LatencyModel(CLOUD_A800)
        cost = OpCost(flops=1e12, gpu_bytes=1.0)
        assert model.op_seconds(cost) == pytest.approx(
            1e12 / CLOUD_A800.gpu_flops + CLOUD_A800.kernel_launch_overhead_s
        )

    def test_roofline_memory_bound(self):
        model = LatencyModel(CLOUD_A800)
        cost = OpCost(flops=1.0, gpu_bytes=1e9)
        assert model.op_seconds(cost) == pytest.approx(
            1e9 / CLOUD_A800.gpu_bandwidth + CLOUD_A800.kernel_launch_overhead_s
        )

    def test_transfer_scales_with_bytes(self):
        model = LatencyModel(EDGE_RTX4060)
        assert model.transfer_seconds(2e9) > model.transfer_seconds(1e9)
        assert model.transfer_seconds(0) == 0.0

    def test_decode_attention_bandwidth_bound_scales_with_kv(self):
        """The whole point of KV sparsity: decode attention time ~ kv_len."""
        model = LatencyModel(CLOUD_A800)
        short = model.op_seconds(model.attention_decode_cost(1, 32, 8, 128, 1024))
        long = model.op_seconds(model.attention_decode_cost(1, 32, 8, 128, 65536))
        assert long > 10 * short

    def test_op_cost_addition(self):
        total = OpCost(1.0, 2.0) + OpCost(3.0, 4.0, kernels=2)
        assert total.flops == 4.0
        assert total.gpu_bytes == 6.0
        assert total.kernels == 3


class TestMemoryLedger:
    def test_allocate_and_free(self):
        ledger = MemoryLedger(EDGE_RTX4060)
        ledger.allocate("weights", 2 * GB, MemoryTier.GPU)
        assert ledger.used(MemoryTier.GPU) == 2 * GB
        ledger.free("weights")
        assert ledger.used(MemoryTier.GPU) == 0

    def test_oom_raised(self):
        ledger = MemoryLedger(EDGE_RTX4060)
        with pytest.raises(OutOfMemoryError):
            ledger.allocate("kv", 100 * GB, MemoryTier.GPU)

    def test_duplicate_name_rejected(self):
        ledger = MemoryLedger(CLOUD_A800)
        ledger.allocate("a", 1, MemoryTier.GPU)
        with pytest.raises(ValueError):
            ledger.allocate("a", 1, MemoryTier.GPU)

    def test_migrate_moves_bytes(self):
        ledger = MemoryLedger(EDGE_RTX4060)
        ledger.allocate("kv", GB, MemoryTier.GPU)
        moved = ledger.migrate("kv", MemoryTier.CPU)
        assert moved == GB
        assert ledger.used(MemoryTier.GPU) == 0
        assert ledger.used(MemoryTier.CPU) == GB

    def test_migrate_same_tier_noop(self):
        ledger = MemoryLedger(EDGE_RTX4060)
        ledger.allocate("kv", GB, MemoryTier.CPU)
        assert ledger.migrate("kv", MemoryTier.CPU) == 0

    def test_resize_tracks_peak(self):
        ledger = MemoryLedger(EDGE_RTX4060)
        ledger.allocate("kv", GB, MemoryTier.GPU)
        ledger.resize("kv", 3 * GB)
        ledger.resize("kv", GB)
        assert ledger.peak_gpu_bytes == 3 * GB

    def test_resize_oom(self):
        ledger = MemoryLedger(EDGE_RTX4060_4GB)
        ledger.allocate("kv", 3 * GB, MemoryTier.GPU)
        with pytest.raises(OutOfMemoryError):
            ledger.resize("kv", 5 * GB)

    @given(st.lists(st.integers(1, 10**9), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_used_is_sum(self, sizes):
        ledger = MemoryLedger(CLOUD_A800)
        total = 0
        for i, size in enumerate(sizes):
            if total + size > CLOUD_A800.gpu_memory_bytes:
                break
            ledger.allocate(f"buf{i}", size, MemoryTier.GPU)
            total += size
        assert ledger.used(MemoryTier.GPU) == total


class TestStreamSimulator:
    def test_single_stream_serializes(self):
        sim = StreamSimulator()
        sim.enqueue(StreamOp("compute", 1.0))
        sim.enqueue(StreamOp("compute", 2.0))
        assert sim.makespan() == pytest.approx(3.0)

    def test_two_streams_overlap(self):
        sim = StreamSimulator()
        sim.enqueue(StreamOp("compute", 3.0))
        sim.enqueue(StreamOp("transfer", 2.0))
        assert sim.makespan() == pytest.approx(3.0)

    def test_event_dependency_serializes(self):
        sim = StreamSimulator()
        sim.enqueue(StreamOp("transfer", 2.0, signals=("kv_ready",)))
        sim.enqueue(StreamOp("compute", 1.0, waits_for=("kv_ready",)))
        assert sim.makespan() == pytest.approx(3.0)

    def test_prefetch_pipeline_hides_transfer(self):
        """Figure 7(e): transfer for step i+1 overlaps compute of step i."""
        sim = StreamSimulator()
        sim.enqueue(StreamOp("transfer", 1.0, signals=("kv0",)))
        for step in range(4):
            sim.enqueue(
                StreamOp(
                    "compute", 2.0,
                    waits_for=(f"kv{step}",), signals=(f"done{step}",),
                )
            )
            sim.enqueue(StreamOp("transfer", 1.0, signals=(f"kv{step+1}",)))
        # 1s initial fill + 4 x 2s compute; transfers hidden.
        assert sim.makespan() == pytest.approx(9.0)

    def test_deadlock_detected(self):
        sim = StreamSimulator()
        sim.enqueue(StreamOp("compute", 1.0, waits_for=("never",)))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_duration_rejected(self):
        sim = StreamSimulator()
        with pytest.raises(ValueError):
            sim.enqueue(StreamOp("compute", -1.0))

    def test_schedule_start_end_consistency(self):
        sim = StreamSimulator()
        sim.enqueue(StreamOp("a", 1.5, signals=("x",)))
        sim.enqueue(StreamOp("b", 0.5, waits_for=("x",)))
        schedule = sim.run()
        for item in schedule:
            assert item.end_s == pytest.approx(item.start_s + item.op.duration_s)

    def test_clear(self):
        sim = StreamSimulator()
        sim.enqueue(StreamOp("a", 1.0))
        sim.clear()
        assert sim.makespan() == 0.0

    @given(st.lists(st.floats(0.01, 5.0), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_property_makespan_bounds(self, durations):
        """Makespan >= longest stream occupancy; <= serial sum."""
        sim = StreamSimulator()
        for i, d in enumerate(durations):
            sim.enqueue(StreamOp(f"s{i % 3}", d))
        span = sim.makespan()
        busiest = max(sim.stream_busy_time(f"s{k}") for k in range(3))
        assert span >= busiest - 1e-9
        assert span <= sum(durations) + 1e-9
