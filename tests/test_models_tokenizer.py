"""Tests for the synthetic tokenizer and model configs."""

import numpy as np
import pytest

from repro.models import (
    DEEPSEEK_MLA_LIKE_8B,
    EDGE_LIKE_1B,
    LLAMA_LIKE_8B,
    QWEN_LIKE_8B,
    AttentionKind,
    ModelConfig,
    SyntheticTokenizer,
    tiny_test_config,
)
from repro.utils import GB


class TestTokenizer:
    def test_roundtrip(self):
        tok = SyntheticTokenizer(256)
        text = "<bos> ent0003 w0001 <q> ent0007"
        assert tok.decode(tok.encode(text)) == text

    def test_unknown_word(self):
        tok = SyntheticTokenizer(256)
        assert tok.encode("definitely-not-a-word") == [tok.unk_id]

    def test_special_ids_distinct(self):
        tok = SyntheticTokenizer(128)
        ids = {tok.pad_id, tok.bos_id, tok.eos_id, tok.unk_id, tok.sep_id,
               tok.question_id, tok.answer_id, tok.doc_id}
        assert len(ids) == 8

    def test_content_vs_filler_ranges(self):
        tok = SyntheticTokenizer(256)
        assert tok.is_content(tok.content_id(0))
        assert not tok.is_content(tok.filler_id(0))
        assert not tok.is_content(tok.bos_id)

    def test_vocab_fully_covered(self):
        tok = SyntheticTokenizer(100)
        assert len(tok) == 100
        # decode every id without error
        tok.decode(list(range(100)))

    def test_content_index_bounds(self):
        tok = SyntheticTokenizer(64)
        with pytest.raises(IndexError):
            tok.content_id(tok.n_content)
        with pytest.raises(IndexError):
            tok.filler_id(-1)

    def test_random_content_ids_unique(self):
        tok = SyntheticTokenizer(512)
        ids = tok.random_content_ids(np.random.default_rng(0), 50)
        assert len(set(ids.tolist())) == 50
        assert all(tok.is_content(int(i)) for i in ids)

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTokenizer(4)


class TestModelConfig:
    def test_presets_valid(self):
        for cfg in (LLAMA_LIKE_8B, QWEN_LIKE_8B, DEEPSEEK_MLA_LIKE_8B, EDGE_LIKE_1B):
            assert cfg.n_layers > 0
            assert cfg.group_size >= 1

    def test_param_bytes_override(self):
        assert LLAMA_LIKE_8B.parameter_bytes() == 16 * GB

    def test_parameter_count_reasonable_for_8b(self):
        cfg = LLAMA_LIKE_8B.with_(param_bytes=0)
        count = cfg.parameter_count()
        assert 6e9 < count < 9e9

    def test_kv_bytes_llama_32k(self):
        """Paper Sec. 2.2: ~4GB KV for 32K context on Llama3.1-8B."""
        kv = LLAMA_LIKE_8B.kv_bytes(seq_len=32 * 1024)
        assert 3.5 * GB < kv < 4.5 * GB

    def test_kv_cache_width_mla_uses_latent(self):
        assert (
            DEEPSEEK_MLA_LIKE_8B.kv_cache_width
            == DEEPSEEK_MLA_LIKE_8B.mla_latent_dim
        )

    def test_mha_requires_equal_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", vocab_size=100, d_model=64, n_layers=1,
                n_q_heads=8, n_kv_heads=4, head_dim=8, d_ff=64,
                attention=AttentionKind.MHA,
            )

    def test_mqa_requires_single_kv_head(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", vocab_size=100, d_model=64, n_layers=1,
                n_q_heads=8, n_kv_heads=2, head_dim=8, d_ff=64,
                attention=AttentionKind.MQA,
            )

    def test_indivisible_groups_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", vocab_size=100, d_model=64, n_layers=1,
                n_q_heads=8, n_kv_heads=3, head_dim=8, d_ff=64,
            )

    def test_tiny_configs_all_kinds(self):
        for kind in AttentionKind:
            cfg = tiny_test_config(kind)
            assert cfg.attention is kind
            assert cfg.d_model == 3 * cfg.head_dim + 1
