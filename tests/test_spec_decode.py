"""Speculative decoding tests: the cross-mode bit-identity matrix.

The tentpole guarantee under test: a server with ``spec_decode_k > 0``
produces byte-for-byte the streams, GenerationStats, selection histories
and pool counters of a never-drafted run — for every policy, draft
length, decode mode (sequential/batched) and prefill mode
(chunked/monolithic), including under forced preemption of a speculating
session and across executors and the HTTP frontend.

Structure:

- the full 8 policies x k in {1,2,4} x {sequential,batched} x
  {chunked,monolithic} matrix is ``@pytest.mark.slow`` (run with
  ``-m slow``); a smoke diagonal stays in tier-1;
- a Hypothesis oracle test drives the server with a scripted draft model
  of known accuracy and pins acceptance to an independent simulation of
  the commit rule (longest greedy prefix + exactly one bonus token);
- pool properties: spec reservations restore the free stack exactly and
  never move the allocated/freed ledger; promotions count as ordinary
  allocations;
- executor coverage: inproc == multiproc at 1/2/4 workers with
  speculation on, including a mid-trace worker kill;
- HTTP: SSE chunks reassemble to the non-streaming body and both match a
  direct server run, with speculation active;
- draft-model token_map units: out-of-map tokens reject the draft
  (empty proposal), never raise.
"""

from __future__ import annotations

import asyncio
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ClusterConfig,
    EngineConfig,
    GenerationRequest,
    SamplingParams,
)
from repro.distill.dataset import DistillationDataset
from repro.distill.dlm import DraftModel
from repro.distill.trainer import DistillationTrainer
from repro.kvcache.pool import BlockTable, PagedKVPool
from repro.serving.engine import InProcessExecutor, MultiprocExecutor
from repro.serving.http import AsyncEngine, HttpServer
from repro.serving.server import SpeContextServer
from repro.serving.trace import solo_token_streams
from tests.conftest import make_recall_prompt
from tests.test_engine_executor import run_trace
from tests.test_http_frontend import request_json, sse_chunks
from tests.test_serving_traces import assert_outputs_bit_identical

warnings.filterwarnings("ignore", message="One of the clusters is empty")

ALL_NAMES = (
    "specontext", "quest", "h2o", "shadowkv", "clusterkv",
    "streaming", "sliding", "full",
)
ALL_K = (1, 2, 4)


def spec_config(tokenizer, k: int, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
        spec_decode_k=k,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def recall_requests(tokenizer, policy: str, n=3, max_new_tokens=8):
    """Recall prompts (induction-friendly, so drafts sometimes land)."""
    requests = []
    for i in range(n):
        prompt, _, _ = make_recall_prompt(
            tokenizer, np.random.default_rng(300 + i), n_filler=100
        )
        requests.append(GenerationRequest(
            prompt,
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
            policy=policy,
            budget=48 if i % 2 else 64,
        ))
    return requests


def clone(request: GenerationRequest) -> GenerationRequest:
    return GenerationRequest(
        request.prompt_ids.copy(),
        sampling=request.sampling,
        policy=request.policy,
        budget=request.budget,
        priority=request.priority,
    )


def run_server(model, config, requests):
    server = SpeContextServer(model, config)
    for request in requests:
        server.add_request(clone(request))
    return server.run(), server


def server_fingerprint(server) -> tuple:
    """Pool ledger + occupancy + preemption count.

    The spec_* counters are deliberately excluded (observability on top,
    non-zero only in speculative runs). Exact free-stack *order* is only
    compared in single-session tests: with several sessions in a wave,
    one session promoting while another releases can swap which physical
    ids each consumed, without changing any stream or counter.
    """
    stats = server.pool.stats
    return (
        stats.allocated,
        stats.freed,
        stats.prefill_blocks_allocated,
        stats.prefix_blocks_reused,
        stats.prefix_queries,
        stats.prefix_hits,
        server.pool.n_free,
        len(server.preemption_log),
    )


def assert_spec_matches_reference(spec, ref):
    """Full cross-run equality: outputs, meters, pool, preemptions."""
    spec_outputs, spec_server = spec
    ref_outputs, ref_server = ref
    assert_outputs_bit_identical(spec_outputs, ref_outputs)
    assert server_fingerprint(spec_server) == server_fingerprint(ref_server)
    assert spec_server.meter.generated_tokens == ref_server.meter.generated_tokens


# ---- the cross-mode matrix ---------------------------------------------------


MODES = (
    ("sequential", "monolithic"),
    ("sequential", "chunked"),
    ("batched", "monolithic"),
    ("batched", "chunked"),
)


def mode_overrides(decode: str, prefill: str) -> dict:
    overrides = {"batched_decode": decode == "batched"}
    if prefill == "chunked":
        overrides["prefill_chunk_tokens"] = 32
    return overrides


class TestBitIdentityMatrix:
    """Spec streams == non-spec streams, all modes, all policies."""

    @pytest.fixture(scope="class")
    def reference(self, tiny_gqa_model, tiny_tokenizer):
        """Memoized k=0 runs, one per (policy, decode, prefill) cell."""
        cache = {}

        def get(policy: str, decode: str, prefill: str):
            key = (policy, decode, prefill)
            if key not in cache:
                config = spec_config(
                    tiny_tokenizer, 0, **mode_overrides(decode, prefill)
                )
                cache[key] = run_server(
                    tiny_gqa_model, config, recall_requests(tiny_tokenizer, policy)
                )
            return cache[key]

        return get

    def check_cell(self, model, tokenizer, reference, policy, k, decode, prefill):
        config = spec_config(tokenizer, k, **mode_overrides(decode, prefill))
        spec = run_server(model, config, recall_requests(tokenizer, policy))
        assert spec[1].spec_stats.spec_steps > 0  # speculation engaged
        assert_spec_matches_reference(spec, reference(policy, decode, prefill))

    @pytest.mark.slow
    @pytest.mark.parametrize("decode,prefill", MODES)
    @pytest.mark.parametrize("k", ALL_K)
    @pytest.mark.parametrize("policy", ALL_NAMES)
    def test_full_matrix(
        self, tiny_gqa_model, tiny_tokenizer, reference, policy, k, decode, prefill
    ):
        self.check_cell(
            tiny_gqa_model, tiny_tokenizer, reference, policy, k, decode, prefill
        )

    @pytest.mark.parametrize("policy", ALL_NAMES)
    def test_smoke_all_policies_batched(
        self, tiny_gqa_model, tiny_tokenizer, reference, policy
    ):
        """Tier-1 diagonal: every policy at k=2, batched + monolithic."""
        self.check_cell(
            tiny_gqa_model, tiny_tokenizer, reference,
            policy, 2, "batched", "monolithic",
        )

    @pytest.mark.parametrize("decode,prefill", MODES[:2] + MODES[3:])
    def test_smoke_cross_modes(
        self, tiny_gqa_model, tiny_tokenizer, reference, decode, prefill
    ):
        """Tier-1 cross-mode spot checks at k=4 on a stateful policy."""
        self.check_cell(
            tiny_gqa_model, tiny_tokenizer, reference,
            "specontext", 4, decode, prefill,
        )

    def test_smoke_chunked_with_token_budget(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Chunked prefill + max_step_tokens budget composes with spec."""
        overrides = dict(prefill_chunk_tokens=32, max_step_tokens=48)
        requests = recall_requests(tiny_tokenizer, "h2o", n=4)
        ref = run_server(
            tiny_gqa_model, spec_config(tiny_tokenizer, 0, **overrides), requests
        )
        spec = run_server(
            tiny_gqa_model, spec_config(tiny_tokenizer, 4, **overrides), requests
        )
        assert spec[1].spec_stats.spec_steps > 0
        assert_spec_matches_reference(spec, ref)

    def test_mixed_spec_and_sampled_sessions_share_a_wave(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Sampled (temperature > 0) sessions never speculate, but ride in
        the same fused verify call; both stay bit-identical."""
        requests = recall_requests(tiny_tokenizer, "sliding", n=2)
        requests.append(GenerationRequest(
            make_recall_prompt(
                tiny_tokenizer, np.random.default_rng(777), n_filler=100
            )[0],
            sampling=SamplingParams(
                max_new_tokens=8, temperature=0.8, seed=5
            ),
            policy="sliding",
        ))
        ref = run_server(tiny_gqa_model, spec_config(tiny_tokenizer, 0), requests)
        spec = run_server(tiny_gqa_model, spec_config(tiny_tokenizer, 2), requests)
        assert spec[1].spec_stats.spec_steps > 0
        assert_spec_matches_reference(spec, ref)


# ---- forced preemption of a speculating session ------------------------------


class TestSpecUnderForcedPreemption:
    """A speculating session must survive swap/recompute preemption with
    streams equal to solo runs, and speculation must resume after."""

    def pressured_requests(self, tokenizer):
        return recall_requests(tokenizer, "sliding", n=6, max_new_tokens=24)

    def tight_pool(self, model, tokenizer, requests) -> int:
        """Two prompts + one spare block: co-resident sessions must fight
        over growth blocks and the loser is preempted mid-generation."""
        pool = SpeContextServer(model, spec_config(tokenizer, 0)).pool
        prompt_blocks = max(
            pool.blocks_for_tokens(r.prompt_len) for r in requests
        )
        return 2 * prompt_blocks + 1

    @pytest.mark.parametrize("preempt_mode", ("swap", "recompute"))
    def test_preempted_speculating_session_streams_exact(
        self, tiny_gqa_model, tiny_tokenizer, preempt_mode
    ):
        requests = self.pressured_requests(tiny_tokenizer)
        solo = solo_token_streams(
            tiny_gqa_model, spec_config(tiny_tokenizer, 4), requests, clone
        )
        # A pool this small forces mid-generation preemption; speculation
        # must neither dodge it (reservations are opportunistic) nor
        # corrupt the swapped/recomputed session.
        config = spec_config(
            tiny_tokenizer, 4,
            pool_blocks=self.tight_pool(tiny_gqa_model, tiny_tokenizer, requests),
            preempt_mode=preempt_mode,
        )
        outputs, server = run_server(tiny_gqa_model, config, requests)
        assert len(server.preemption_log) > 0
        assert server.spec_stats.spec_steps > 0
        assert server.spec_stats.accepted > 0
        assert [o.token_ids for o in outputs] == solo
        # Preemption forces swaps of decode-phase sessions, i.e. sessions
        # that had already run speculative steps.
        assert any(o.stats.preemptions > 0 for o in outputs)

    @pytest.mark.parametrize("preempt_mode", ("swap", "recompute"))
    def test_preemption_schedule_matches_nonspec_run(
        self, tiny_gqa_model, tiny_tokenizer, preempt_mode
    ):
        """With drafts that never fit (zero free blocks at verify time),
        spec runs degrade to the reference schedule exactly."""
        requests = self.pressured_requests(tiny_tokenizer)
        config = dict(
            pool_blocks=self.tight_pool(tiny_gqa_model, tiny_tokenizer, requests),
            preempt_mode=preempt_mode,
        )
        ref = run_server(
            tiny_gqa_model, spec_config(tiny_tokenizer, 0, **config), requests
        )
        spec = run_server(
            tiny_gqa_model, spec_config(tiny_tokenizer, 4, **config), requests
        )
        # Streams are always identical; the preemption *schedule* may only
        # shift through transient reservation occupancy, never the victims'
        # outputs.
        assert [o.token_ids for o in spec[0]] == [o.token_ids for o in ref[0]]
        assert [o.finish_reason for o in spec[0]] == [
            o.finish_reason for o in ref[0]
        ]
        assert spec[1].meter.generated_tokens == ref[1].meter.generated_tokens


# ---- acceptance-rule property (scripted draft oracle) ------------------------


class OracleDraft:
    """Scripted draft model with known accuracy.

    Proposes the true continuation for the first ``j`` positions of every
    draft and a provably-wrong token after, which makes the expected
    accept length of every verify step computable in closed form.
    """

    def __init__(self, prompt_len: int, reference: list[int], j: int, vocab: int):
        self.prompt_len = prompt_len
        self.reference = reference
        self.j = j
        self.vocab = vocab
        self.calls: list[tuple[int, int]] = []  # (committed_so_far, k)

    def draft(self, context_ids, k: int) -> list[int]:
        c = len(context_ids) - self.prompt_len
        self.calls.append((c, k))
        out = []
        for t in range(k):
            true = int(self.reference[c + t])
            out.append(true if t < self.j else (true + 1) % self.vocab)
        return out


def simulate_acceptance(n_tokens: int, spec_k: int, j: int):
    """Independent model of the commit rule for an OracleDraft run.

    Under ``sparse_from_first_token`` (the default) even the first
    generated token comes from a real decode forward, so speculation
    starts at step 0. Each eligible step drafts ``min(spec_k,
    remaining - 1)`` tokens, accepts the matching prefix (``min(j, k)``
    long, capped by max_new_tokens) and always commits the one
    bonus/verifier token on top.
    """
    committed, spec_steps, drafted, accepted = 0, 0, 0, 0
    while committed < n_tokens:
        k = min(spec_k, n_tokens - committed - 1)
        if k < 1:
            committed += 1  # plain decode step
            continue
        matches = min(j, k)
        m = 1
        while m <= k and (m - 1) < matches and committed + m < n_tokens:
            m += 1
        spec_steps += 1
        drafted += k
        accepted += m - 1
        committed += m
    return spec_steps, drafted, accepted


class TestAcceptanceRuleProperties:
    @given(
        spec_k=st.integers(min_value=1, max_value=4),
        j=st.integers(min_value=0, max_value=4),
        max_new=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_accepted_prefix_is_longest_greedy_match(
        self, tiny_gqa_model, tiny_tokenizer, spec_k, j, max_new
    ):
        prompt, _, _ = make_recall_prompt(
            tiny_tokenizer, np.random.default_rng(42), n_filler=80
        )
        request = GenerationRequest(
            prompt,
            sampling=SamplingParams(max_new_tokens=max_new),
            policy="sliding",
            budget=48,
        )
        [ref_output], ref_server = run_server(
            tiny_gqa_model,
            spec_config(tiny_tokenizer, 0, pool_blocks=128),
            [request],
        )
        reference = list(ref_output.token_ids)
        assert len(reference) == max_new  # greedy, no stop ids

        oracle = OracleDraft(
            len(prompt), reference, j, tiny_tokenizer.vocab_size
        )
        server = SpeContextServer(
            tiny_gqa_model,
            spec_config(tiny_tokenizer, spec_k, pool_blocks=128),
            draft_model=oracle,
        )
        server.add_request(clone(request))
        [output] = server.run()

        assert output.token_ids == reference
        # Single session: rejected reservations restore the free stack in
        # the exact order, so final physical state matches the reference.
        assert server.pool._free == ref_server.pool._free
        expected = simulate_acceptance(max_new, spec_k, j)
        got = (
            server.spec_stats.spec_steps,
            server.spec_stats.drafted,
            server.spec_stats.accepted,
        )
        assert got == expected
        # Full acceptance => the step committed k drafts + exactly one
        # bonus token; the oracle's call log pins the stride.
        if j >= spec_k and max_new >= spec_k + 2:
            first_c, first_k = oracle.calls[0]
            assert first_c == 0
            if len(oracle.calls) > 1:
                # Full acceptance advanced by k drafts + exactly 1 bonus.
                assert oracle.calls[1][0] - first_c == first_k + 1

    def test_acceptance_rate_bounds(self, tiny_gqa_model, tiny_tokenizer):
        """With the real distilled draft: rates land in [0, 1] and the
        stats identity accepted <= drafted holds."""
        requests = recall_requests(tiny_tokenizer, "sliding", n=3)
        _, server = run_server(
            tiny_gqa_model, spec_config(tiny_tokenizer, 4), requests
        )
        stats = server.spec_stats
        assert stats.spec_steps > 0
        assert 0 <= stats.accepted <= stats.drafted
        assert 0.0 <= stats.acceptance_rate <= 1.0
        assert stats.tokens_per_spec_step >= 1.0


# ---- pool reservation properties ---------------------------------------------


class TestPoolSpecReservations:
    @given(
        capacity=st.integers(min_value=1, max_value=24),
        pre_alloc=st.integers(min_value=0, max_value=8),
        n_reserve=st.integers(min_value=0, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_release_restores_free_stack_exactly(
        self, capacity, pre_alloc, n_reserve
    ):
        pool = PagedKVPool(capacity, block_size=4)
        table = BlockTable()
        for _ in range(min(pre_alloc, capacity)):
            table.block_ids.append(pool.allocate())
        before_free = list(pool._free)
        before_ledger = (pool.stats.allocated, pool.stats.freed)

        taken = pool.reserve_spec(n_reserve)
        assert len(taken) == min(n_reserve, len(before_free))
        assert all(pool.ref_count(b) == 1 for b in taken)

        pool.release_spec(taken)
        assert pool._free == before_free  # order included
        assert (pool.stats.allocated, pool.stats.freed) == before_ledger
        assert pool.stats.spec_reserved == pool.stats.spec_released == len(taken)
        pool.check_consistency()

    @given(
        capacity=st.integers(min_value=2, max_value=24),
        n_reserve=st.integers(min_value=1, max_value=24),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_promotions_count_as_ordinary_allocations(
        self, capacity, n_reserve, data
    ):
        pool = PagedKVPool(capacity, block_size=4)
        table = BlockTable()
        table.block_ids.append(pool.allocate())

        taken = pool.reserve_spec(n_reserve)
        n_promote = data.draw(
            st.integers(min_value=0, max_value=len(taken)), label="n_promote"
        )
        pool.promote_spec(table, taken[:n_promote])
        pool.release_spec(taken[n_promote:])
        assert pool.stats.allocated == 1 + n_promote
        assert pool.stats.spec_promoted == n_promote
        assert len(table) == 1 + n_promote
        pool.check_consistency()

        pool.free_table(table)
        assert pool.stats.freed == 1 + n_promote
        assert pool.n_used == 0  # nothing published, so nothing retained
        pool.check_consistency()

    def test_reserve_never_evicts_prefix_blocks(self):
        """reserve_spec is opportunistic: a pool whose free stack is empty
        but whose prefix cache is full yields zero blocks, not evictions."""
        from tests.test_paged_pool import payload_of

        pool = PagedKVPool(4, block_size=4)
        table = BlockTable()
        token_ids = np.arange(16)
        for i in range(4):
            table.block_ids.append(pool.allocate())
            pool.write_block(table, i, payload_of(float(i)))
        pool.publish_prefix(token_ids, table, 4)
        pool.free_table(table)  # blocks retained as evictable prefix cache
        assert pool.n_free == 0
        assert pool.n_evictable() == 4
        assert pool.reserve_spec(3) == []
        assert pool.stats.prefix_evictions == 0
        pool.check_consistency()

    def test_double_release_and_foreign_promote_rejected(self):
        pool = PagedKVPool(4, block_size=4)
        taken = pool.reserve_spec(2)
        pool.release_spec(taken)
        with pytest.raises(ValueError, match="not a live spec reservation"):
            pool.release_spec(taken)
        table = BlockTable()
        with pytest.raises(ValueError, match="not a live spec reservation"):
            pool.promote_spec(table, [taken[0]])
        with pytest.raises(ValueError, match="non-negative"):
            pool.reserve_spec(-1)


# ---- executors ---------------------------------------------------------------


def executor_requests(tokenizer, max_new=6):
    """One request per policy, recall prompts so drafts sometimes land."""
    requests = []
    for i, name in enumerate(ALL_NAMES):
        prompt, _, _ = make_recall_prompt(
            tokenizer, np.random.default_rng(900 + i), n_filler=60
        )
        requests.append(GenerationRequest(
            prompt,
            sampling=SamplingParams(max_new_tokens=max_new),
            policy=name,
            budget=48,
        ))
    return requests


class TestExecutorSpecBitIdentity:
    @pytest.fixture(scope="class")
    def reference(self, tiny_gqa_model, tiny_tokenizer):
        """Ground truth: same trace, speculation off, one inproc worker."""
        requests = executor_requests(tiny_tokenizer)
        with InProcessExecutor(
            tiny_gqa_model,
            spec_config(tiny_tokenizer, 0),
            ClusterConfig(n_replicas=1, router="round_robin"),
        ) as executor:
            streams, reasons, _ = run_trace(executor, requests)
        return requests, streams, reasons

    @pytest.mark.parametrize("n_workers", (1, 2, 4))
    def test_inproc_and_multiproc_match_nonspec(
        self, tiny_gqa_model, tiny_tokenizer, reference, n_workers
    ):
        requests, ref_streams, ref_reasons = reference
        config = spec_config(tiny_tokenizer, 2)
        cluster = ClusterConfig(n_replicas=n_workers, router="round_robin")
        for kind in (InProcessExecutor, MultiprocExecutor):
            with kind(tiny_gqa_model, config, cluster) as executor:
                streams, reasons, _ = run_trace(executor, requests)
            assert streams == ref_streams, kind.kind
            assert reasons == ref_reasons, kind.kind

    def test_kill_worker_mid_trace_with_speculation(
        self, tiny_gqa_model, tiny_tokenizer, reference
    ):
        """Failover replays a speculating session on a survivor; merged
        client streams stay exactly-once and bit-identical."""
        requests, ref_streams, ref_reasons = reference
        config = spec_config(tiny_tokenizer, 2)
        cluster = ClusterConfig(n_replicas=2, router="round_robin")
        with MultiprocExecutor(tiny_gqa_model, config, cluster) as executor:
            streams, reasons, _ = run_trace(executor, requests, kill=(2, 0))
        assert streams == ref_streams
        assert reasons == ref_reasons


# ---- HTTP frontend -----------------------------------------------------------


class TestHttpSpec:
    def test_sse_matches_body_matches_direct_server(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        prompt, _, _ = make_recall_prompt(
            tiny_tokenizer, np.random.default_rng(77), n_filler=60
        )
        prompt = [int(t) for t in prompt]
        max_new = 8

        [direct_output], direct_server = run_server(
            tiny_gqa_model,
            spec_config(tiny_tokenizer, 2),
            [GenerationRequest(
                np.asarray(prompt, dtype=np.int64),
                sampling=SamplingParams(max_new_tokens=max_new),
            )],
        )
        assert direct_server.spec_stats.spec_steps > 0

        async def scenario_with_sse():
            # request_json JSON-decodes; the SSE stream needs raw bytes.
            import json as _json

            from tests.test_http_frontend import http_payload, raw_request

            executor = InProcessExecutor(
                tiny_gqa_model,
                spec_config(tiny_tokenizer, 2),
                ClusterConfig(n_replicas=1, router="round_robin"),
            )
            server = HttpServer(AsyncEngine(executor), tiny_tokenizer)
            await server.start("127.0.0.1", 0)
            try:
                port = server.addresses[0][1]
                status, body = await request_json(
                    port, "POST", "/v1/completions",
                    {"prompt": prompt, "max_tokens": max_new},
                )
                assert status == 200
                payload = _json.dumps(
                    {"prompt": prompt, "max_tokens": max_new, "stream": True}
                ).encode()
                response = await raw_request(
                    port, http_payload("POST", "/v1/completions", payload)
                )
                _, _, sse_body = response.partition(b"\r\n\r\n")
                return body, sse_chunks(sse_body)
            finally:
                await server.stop()
                await server.engine.close()

        body, chunks = asyncio.run(scenario_with_sse())
        assert body["choices"][0]["token_ids"] == list(direct_output.token_ids)
        streamed_tokens = []
        for chunk in chunks:
            if chunk is None:
                continue
            streamed_tokens.extend(chunk["choices"][0]["token_ids"])
        assert streamed_tokens == list(direct_output.token_ids)
        assert chunks[-1] is None  # [DONE] terminator


# ---- draft model token_map units ---------------------------------------------


class TestDraftModelTokenMap:
    @pytest.fixture(scope="class")
    def content_map(self, tiny_tokenizer):
        """token_map covering specials + content words, excluding filler."""
        n = tiny_tokenizer.n_content
        return np.concatenate([
            np.arange(8),
            np.array([tiny_tokenizer.content_id(i) for i in range(n)]),
        ])

    def test_out_of_map_context_token_rejects_not_raises(
        self, tiny_gqa_model, tiny_tokenizer, content_map
    ):
        draft = DraftModel.from_teacher(tiny_gqa_model, token_map=content_map)
        filler = tiny_tokenizer.filler_id(0)
        assert not draft.knows(filler)
        context = np.array([tiny_tokenizer.bos_id, filler])
        assert draft.greedy_next(context) is None
        assert draft.draft(context, 4) == []  # rejection, never KeyError

    def test_draft_stops_at_unmapped_proposal(
        self, tiny_gqa_model, tiny_tokenizer, content_map
    ):
        """Proposals are always in-map by construction (readout is over
        token_map rows), so the draft only halts on unmapped *inputs*."""
        draft = DraftModel.from_teacher(tiny_gqa_model, token_map=content_map)
        rng = np.random.default_rng(3)
        ids = [int(t) for t in tiny_tokenizer.random_content_ids(rng, 12)]
        out = draft.draft(np.array([tiny_tokenizer.bos_id] + ids), 4)
        assert len(out) <= 4
        assert all(draft.knows(t) for t in out)

    def test_knows_bounds(self, tiny_gqa_model, content_map):
        draft = DraftModel.from_teacher(tiny_gqa_model, token_map=content_map)
        assert not draft.knows(-1)
        assert not draft.knows(draft.vocab_size)
        assert draft.knows(int(content_map[0]))

    def test_token_map_validation(self, tiny_gqa_model):
        vocab = tiny_gqa_model.config.vocab_size
        with pytest.raises(ValueError, match="non-empty 1-D"):
            DraftModel.from_teacher(tiny_gqa_model, token_map=np.array([]))
        with pytest.raises(ValueError, match="unique"):
            DraftModel.from_teacher(tiny_gqa_model, token_map=np.array([3, 3]))
        with pytest.raises(ValueError, match="outside target vocabulary"):
            DraftModel.from_teacher(
                tiny_gqa_model, token_map=np.array([0, vocab])
            )

    def test_draft_k_edge_cases(self, tiny_gqa_model, tiny_tokenizer):
        draft = DraftModel.from_teacher(tiny_gqa_model)
        context = np.array([tiny_tokenizer.bos_id, tiny_tokenizer.content_id(0)])
        assert draft.draft(context, 0) == []
        assert draft.draft(np.array([tiny_tokenizer.bos_id]), 4) == []
        with pytest.raises(ValueError, match="non-negative"):
            draft.draft(context, -1)

    def test_from_trainer_uses_learned_mixers(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        dataset = DistillationDataset(tiny_tokenizer, seq_len=64, seed=9)
        trainer = DistillationTrainer(tiny_gqa_model, dataset, seed=9)
        draft = DraftModel.from_trainer(trainer)
        assert draft.content.shape == trainer.content.shape
        assert np.shares_memory(draft.G, trainer.params["G"]) or np.array_equal(
            draft.G, trainer.params["G"]
        )
        context = np.array(
            [tiny_tokenizer.bos_id]
            + [int(t) for t in tiny_tokenizer.random_content_ids(
                np.random.default_rng(4), 8
            )]
        )
        proposal = draft.draft(context, 3)
        assert all(0 <= t < draft.vocab_size for t in proposal)

    def test_truncated_draft_server_still_bit_identical(
        self, tiny_gqa_model, tiny_tokenizer, content_map
    ):
        """A draft that cannot see filler tokens skips those steps but
        never changes the committed stream."""
        requests = recall_requests(tiny_tokenizer, "sliding", n=3)
        ref = run_server(tiny_gqa_model, spec_config(tiny_tokenizer, 0), requests)
        truncated = DraftModel.from_teacher(
            tiny_gqa_model, token_map=content_map
        )
        server = SpeContextServer(
            tiny_gqa_model, spec_config(tiny_tokenizer, 2), draft_model=truncated
        )
        for request in requests:
            server.add_request(clone(request))
        outputs = server.run()
        assert_spec_matches_reference((outputs, server), ref)
