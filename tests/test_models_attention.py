"""Tests for the attention module's sparse-decode paths.

The correctness contract behind every accuracy experiment: decoding with a
selection that covers the whole cache must equal full attention, for every
attention family and for both 1-D (shared) and 2-D (per-head) selections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.config import AttentionKind


MODELS = ["tiny_mha_model", "tiny_gqa_model", "tiny_mqa_model", "tiny_mla_model"]


class _FixedSelection:
    """SelectionPolicy returning one fixed index array for every layer."""

    def __init__(self, selection):
        self.selection = selection

    def begin_generation(self, prompt_ids, cache):
        pass

    def pre_step(self, step, token_id, cache):
        pass

    def select(self, layer, hidden, position, cache):
        return self.selection


def _prompt(tokenizer, rng, n=64):
    ids = [tokenizer.bos_id]
    ids += [int(t) for t in tokenizer.random_filler_ids(rng, n - 2)]
    ids += [int(tokenizer.random_content_ids(rng, 1)[0])]
    return np.array(ids)


@pytest.mark.parametrize("model_name", MODELS)
class TestSelectionEquivalence:
    def test_full_coverage_selection_equals_full_attention(
        self, model_name, request, tiny_tokenizer
    ):
        model = request.getfixturevalue(model_name)
        rng = np.random.default_rng(51)
        prompt = _prompt(tiny_tokenizer, rng)

        cache_full = model.new_cache()
        model.prefill(prompt, cache_full)
        logits_full, _, _ = model.decode_step(7, cache_full)

        cache_sel = model.new_cache()
        model.prefill(prompt, cache_sel)
        everything = np.arange(cache_sel.seq_len + 1)  # includes the new token
        policy = _FixedSelection(everything)
        logits_sel, selections, _ = model.decode_step(7, cache_sel, policy=policy)

        np.testing.assert_allclose(logits_sel, logits_full, rtol=1e-4, atol=1e-5)
        assert selections  # the policy was consulted

    def test_per_head_full_coverage_equals_full(
        self, model_name, request, tiny_tokenizer
    ):
        model = request.getfixturevalue(model_name)
        rng = np.random.default_rng(52)
        prompt = _prompt(tiny_tokenizer, rng)

        cache_full = model.new_cache()
        model.prefill(prompt, cache_full)
        logits_full, _, _ = model.decode_step(9, cache_full)

        cache_sel = model.new_cache()
        model.prefill(prompt, cache_sel)
        if model.config.attention is AttentionKind.MLA:
            n_sel_heads = model.config.n_q_heads
        else:
            n_sel_heads = model.config.n_kv_heads
        everything = np.arange(cache_sel.seq_len + 1)
        selection = np.broadcast_to(
            everything, (n_sel_heads, everything.size)
        ).copy()
        logits_sel, _, _ = model.decode_step(
            9, cache_sel, policy=_FixedSelection(selection)
        )
        np.testing.assert_allclose(logits_sel, logits_full, rtol=1e-4, atol=1e-5)

    def test_partial_selection_changes_logits(
        self, model_name, request, tiny_tokenizer
    ):
        """Dropping most of the cache must change the output distribution
        (otherwise the sparsity experiments measure nothing)."""
        model = request.getfixturevalue(model_name)
        rng = np.random.default_rng(53)
        prompt = _prompt(tiny_tokenizer, rng, n=96)

        cache_full = model.new_cache()
        model.prefill(prompt, cache_full)
        logits_full, _, _ = model.decode_step(11, cache_full)

        cache_sel = model.new_cache()
        model.prefill(prompt, cache_sel)
        tiny_sel = np.arange(4)
        logits_sel, _, _ = model.decode_step(
            11, cache_sel, policy=_FixedSelection(tiny_sel)
        )
        assert not np.allclose(logits_sel, logits_full, rtol=1e-3)


class TestCurrentTokenUnion:
    def test_current_position_always_attended(self, tiny_gqa_model, tiny_tokenizer):
        """_ensure_current: the just-appended KV pair is never dropped."""
        rng = np.random.default_rng(54)
        prompt = _prompt(tiny_tokenizer, rng)
        cache = tiny_gqa_model.new_cache()
        tiny_gqa_model.prefill(prompt, cache)
        position = cache.seq_len
        selection_without_current = np.arange(8)
        _, selections, _ = tiny_gqa_model.decode_step(
            5, cache, policy=_FixedSelection(selection_without_current)
        )
        for used in selections.values():
            assert position in np.asarray(used).ravel()

    def test_capture_attention_shapes(self, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(55)
        prompt = _prompt(tiny_tokenizer, rng)
        cache = tiny_gqa_model.new_cache()
        tiny_gqa_model.prefill(prompt, cache)
        _, _, attn = tiny_gqa_model.decode_step(5, cache, capture_attention=True)
        assert len(attn) == tiny_gqa_model.config.n_layers
        for weights in attn:
            assert weights.shape[0] == tiny_gqa_model.config.n_q_heads
            np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-5)


class TestRopeMaskHoisting:
    def test_masks_precomputed_and_reused(self, tiny_gqa_model):
        """Masks are built once at __init__, not per projection call."""
        for layer in tiny_gqa_model.layers:
            attn = layer.attention
            assert attn._q_rope_mask() is attn._q_mask
            assert attn._kv_rope_mask() is attn._kv_mask
            assert not attn._q_mask.flags.writeable
            assert attn._q_mask.dtype == bool
            assert attn._q_mask.shape == (attn.config.n_q_heads,)
            assert attn._kv_mask.shape[0] in (
                attn.config.n_kv_heads, attn.config.n_q_heads
            )

    def test_masks_match_layer_weights(self, tiny_gqa_model):
        import numpy as np

        for layer in tiny_gqa_model.layers:
            attn = layer.attention
            if attn.layer.rope_mask is not None:
                assert (
                    attn._q_mask == np.asarray(attn.layer.rope_mask, dtype=bool)
                ).all()
            else:
                assert attn._q_mask.all()
