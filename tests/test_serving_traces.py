"""Trace-driven serving tests: pool pressure, preemption, prefix caching.

Replays seeded Poisson-arrival workloads with mixed policies and
priorities through the pool-backed server and asserts the invariants that
make the shared pool trustworthy:

- pool occupancy never exceeds capacity and nothing leaks;
- preempted requests finish with token streams bit-identical to solo runs
  (swap and recompute modes);
- prefix-cache hits never change tokens and cut prefill block allocations
  by >= 30% on shared-prefix workloads;
- no starvation under the priority scheduler;
- the PR-1 guarantee (batched == solo streams and meter totals for all 8
  policies at fixed seed) survives the pool, including under a forced
  preemption schedule.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import EngineConfig, GenerationRequest, SamplingParams
from repro.serving import SpeContextServer, poisson_trace, replay_trace
from repro.serving.policies import (
    available_schedulers,
    make_scheduler,
    resolve_scheduler_name,
)
from repro.serving.trace import TraceEntry, solo_token_streams
from tests.conftest import make_recall_prompt

warnings.filterwarnings("ignore", message="One of the clusters is empty")

ALL_NAMES = (
    "specontext", "quest", "h2o", "shadowkv", "clusterkv",
    "streaming", "sliding", "full",
)
# Policies whose per-request state is a deterministic function of the
# replayed inputs — exact under recompute-mode preemption. (specontext's
# noise-role head keys come from a stateful rng, so it needs swap mode.)
RECOMPUTE_EXACT = (
    "quest", "h2o", "shadowkv", "clusterkv", "streaming", "sliding", "full",
)


def pool_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def filler_prompt(tokenizer, seed: int, n: int, prefix=None) -> np.ndarray:
    rng = np.random.default_rng(seed)
    ids = [int(t) for t in tokenizer.random_filler_ids(rng, n)]
    if prefix is not None:
        ids = list(prefix) + ids
    return np.array([tokenizer.bos_id] + ids)


def clone(request: GenerationRequest) -> GenerationRequest:
    return GenerationRequest(
        request.prompt_ids.copy(),
        sampling=request.sampling,
        policy=request.policy,
        budget=request.budget,
        priority=request.priority,
    )


def mixed_workload(tokenizer, n=8, max_new_tokens=12, prompt_tokens=30):
    """One request per policy, varied prompt lengths and priorities."""
    requests = []
    for i in range(n):
        prompt = filler_prompt(tokenizer, 100 + i, prompt_tokens + 3 * i)
        requests.append(GenerationRequest(
            prompt,
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
            policy=ALL_NAMES[i % len(ALL_NAMES)],
            budget=48 if i % 2 else 64,
            priority=i % 3,
        ))
    return requests


def occupancy_observer(server: SpeContextServer, high_water: list[int]):
    def observe(s: SpeContextServer) -> None:
        assert s.pool.n_used <= s.pool.capacity
        s.pool.check_consistency()
        high_water.append(s.pool.n_used)
    return observe


class TestTraceHarness:
    def test_poisson_trace_seeded_and_monotonic(self, tiny_tokenizer):
        requests = mixed_workload(tiny_tokenizer, n=6)
        a = poisson_trace(np.random.default_rng(7), requests, 3.0)
        b = poisson_trace(np.random.default_rng(7), requests, 3.0)
        assert [e.arrival_step for e in a] == [e.arrival_step for e in b]
        arrivals = [e.arrival_step for e in a]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0
        burst = poisson_trace(np.random.default_rng(7), requests, 0.0)
        assert all(e.arrival_step == 0 for e in burst)

    def test_replay_jumps_idle_gaps(self, tiny_gqa_model, tiny_tokenizer):
        server = SpeContextServer(tiny_gqa_model, pool_config(tiny_tokenizer))
        late = TraceEntry(
            arrival_step=50,
            request=GenerationRequest(
                filler_prompt(tiny_tokenizer, 1, 20),
                SamplingParams(max_new_tokens=2),
                policy="full",
            ),
        )
        outputs = replay_trace(server, [late])
        assert len(outputs) == 1
        assert server.meter.finished[0].arrival_s == 50.0


class TestPoolPressureServing:
    def test_overcommitted_pool_completes_via_preemption_bit_identical(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Acceptance: pool ~half the aggregate KV of an 8-request
        mixed-policy workload; everything completes through preemption
        with token streams bit-identical to solo runs."""
        requests = mixed_workload(tiny_tokenizer)
        config = pool_config(tiny_tokenizer)
        pool = SpeContextServer(tiny_gqa_model, config).pool
        aggregate_blocks = sum(
            pool.blocks_for_tokens(r.prompt_len + r.sampling.max_new_tokens)
            for r in requests
        )
        per_request_max = max(
            pool.blocks_for_tokens(r.prompt_len + r.sampling.max_new_tokens)
            for r in requests
        )
        half_pool = max(aggregate_blocks // 2, per_request_max)

        solo = solo_token_streams(
            tiny_gqa_model, pool_config(tiny_tokenizer), requests, clone
        )
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(tiny_tokenizer, pool_blocks=half_pool),
        )
        trace = poisson_trace(
            np.random.default_rng(3), [clone(r) for r in requests], 1.5
        )
        high_water: list[int] = []
        outputs = replay_trace(
            server, trace, observer=occupancy_observer(server, high_water)
        )
        assert len(outputs) == len(requests)
        assert [o.token_ids for o in outputs] == solo
        assert len(server.preemption_log) > 0  # pressure actually bit
        assert max(high_water) <= half_pool
        # Every block is back: free, or held only by the prefix cache.
        assert server.pool.n_used == server.pool.n_evictable()
        assert sum(o.stats.preemptions for o in outputs) == len(
            server.preemption_log
        )

    @pytest.mark.parametrize("mode", ["swap", "recompute"])
    @pytest.mark.parametrize("scheduler", ["fcfs", "priority", "sjf"])
    def test_preemption_exact_across_modes_and_schedulers(
        self, mode, scheduler, tiny_gqa_model, tiny_tokenizer
    ):
        policies = RECOMPUTE_EXACT if mode == "recompute" else ALL_NAMES
        requests = [
            GenerationRequest(
                filler_prompt(tiny_tokenizer, 40 + i, 28),
                SamplingParams(max_new_tokens=14),
                policy=policies[i % len(policies)],
                priority=i % 2,
            )
            for i in range(4)
        ]
        solo = solo_token_streams(
            tiny_gqa_model, pool_config(tiny_tokenizer), requests, clone
        )
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(
                tiny_tokenizer,
                pool_blocks=9,
                preempt_mode=mode,
                scheduler=scheduler,
            ),
        )
        for request in requests:
            server.add_request(clone(request))
        outputs = server.run()
        assert len(server.preemption_log) > 0
        assert [o.token_ids for o in outputs] == solo
        if mode == "swap":
            preempted = [o for o in outputs if o.stats.preemptions]
            assert preempted and all(
                o.stats.swap_bytes > 0 for o in preempted
            )

    def test_no_starvation_under_priority_flood(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """A low-priority early request is preempted/deferred by a flood
        of high-priority arrivals but still finishes (finite work => no
        starvation), and high priority is honoured at admission."""
        low = GenerationRequest(
            filler_prompt(tiny_tokenizer, 1, 30),
            SamplingParams(max_new_tokens=16),
            policy="streaming",
            priority=0,
        )
        flood = [
            GenerationRequest(
                filler_prompt(tiny_tokenizer, 10 + i, 30),
                SamplingParams(max_new_tokens=8),
                policy="streaming",
                priority=5,
            )
            for i in range(5)
        ]
        trace = [TraceEntry(0, low)] + [
            TraceEntry(1 + i, r) for i, r in enumerate(flood)
        ]
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(
                tiny_tokenizer,
                pool_blocks=10,
                scheduler="priority",
                max_concurrency=2,
            ),
        )
        outputs = replay_trace(server, trace)
        assert len(outputs) == 6  # nobody starves
        finished = {r.request_id: r for r in server.meter.finished}
        low_finish = finished[0].finish_s
        assert all(
            finished[r.request_id].finish_s <= low_finish
            for r in flood
            if r.request_id is not None
        )

    def test_single_oversized_request_rejected_at_submit(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(
            tiny_gqa_model, pool_config(tiny_tokenizer, pool_blocks=3)
        )
        request = GenerationRequest(
            filler_prompt(tiny_tokenizer, 2, 40),
            SamplingParams(max_new_tokens=4),
            policy="full",
        )
        with pytest.raises(ValueError, match="KV blocks"):
            server.add_request(request)
        assert request.request_id is None  # retryable, no id burned

    def test_request_past_max_position_rejected_at_submit(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Regression: prompt + max_new_tokens past the model's RoPE table
        used to be admitted and decode beyond max_position instead of
        failing at submission."""
        server = SpeContextServer(tiny_gqa_model, pool_config(tiny_tokenizer))
        max_position = tiny_gqa_model.config.max_position
        request = GenerationRequest(
            filler_prompt(tiny_tokenizer, 2, 40),
            SamplingParams(max_new_tokens=max_position),
            policy="full",
        )
        with pytest.raises(ValueError, match="max_position"):
            server.add_request(request)
        assert request.request_id is None  # retryable, no id burned
        # The boundary itself is fine: prompt + max_new == max_position.
        ok = GenerationRequest(
            filler_prompt(tiny_tokenizer, 2, 40),
            SamplingParams(max_new_tokens=max_position - 41),
            policy="full",
        )
        assert server.add_request(ok) == 0
        assert server.n_waiting == 1


class TestPrefixCaching:
    def shared_prefix_requests(self, tokenizer, n=6, prefix_tokens=48):
        prefix = [
            int(t)
            for t in tokenizer.random_filler_ids(
                np.random.default_rng(99), prefix_tokens
            )
        ]
        return [
            GenerationRequest(
                filler_prompt(tokenizer, 200 + i, 24, prefix=prefix),
                SamplingParams(max_new_tokens=4),
                policy="quest",
            )
            for i in range(n)
        ]

    def test_prefix_hits_never_change_tokens_and_save_blocks(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Acceptance: >= 30% fewer prefill-allocated blocks than the
        no-prefix-cache baseline, with bit-identical token streams."""
        requests = self.shared_prefix_requests(tiny_tokenizer)
        cached = SpeContextServer(tiny_gqa_model, pool_config(tiny_tokenizer))
        for request in requests:
            cached.add_request(clone(request))
        cached_outputs = cached.run()

        baseline = SpeContextServer(
            tiny_gqa_model,
            pool_config(tiny_tokenizer, enable_prefix_cache=False),
        )
        for request in requests:
            baseline.add_request(clone(request))
        baseline_outputs = baseline.run()

        assert [o.token_ids for o in cached_outputs] == [
            o.token_ids for o in baseline_outputs
        ]
        with_cache = cached.pool.stats.prefill_blocks_allocated
        without = baseline.pool.stats.prefill_blocks_allocated
        assert with_cache <= 0.7 * without, (with_cache, without)
        assert cached.pool.stats.prefix_hits >= len(requests) - 1
        assert any(o.stats.prefix_reused_tokens > 0 for o in cached_outputs)

    def test_prefix_reuse_exact_for_every_policy(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """A cache warmed by a donor request never changes any policy's
        logits: the follower's stream equals its uncached solo run."""
        prefix = [
            int(t)
            for t in tiny_tokenizer.random_filler_ids(
                np.random.default_rng(7), 32
            )
        ]
        for name in ALL_NAMES:
            follower = GenerationRequest(
                filler_prompt(tiny_tokenizer, 300, 20, prefix=prefix),
                SamplingParams(max_new_tokens=3),
                policy=name,
            )
            solo = solo_token_streams(
                tiny_gqa_model,
                pool_config(tiny_tokenizer, enable_prefix_cache=False),
                [follower],
                clone,
            )[0]
            server = SpeContextServer(
                tiny_gqa_model, pool_config(tiny_tokenizer)
            )
            donor = GenerationRequest(
                filler_prompt(tiny_tokenizer, 301, 16, prefix=prefix),
                SamplingParams(max_new_tokens=1),
                policy="full",
            )
            server.add_request(donor)
            server.run()
            server.add_request(clone(follower))
            output = server.run()[0]
            assert output.stats.prefix_reused_tokens > 0, name
            assert output.token_ids == solo, name


class TestStreaming:
    def test_stream_events_reassemble_outputs(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(tiny_gqa_model, pool_config(tiny_tokenizer))
        for i in range(3):
            server.add_request(GenerationRequest(
                filler_prompt(tiny_tokenizer, 60 + i, 20 + i),
                SamplingParams(max_new_tokens=4),
                policy="streaming",
            ))
        streams: dict[int, list[int]] = {}
        seen_steps: dict[int, int] = {}
        while server.has_unfinished:
            server.step()
            for event in server.pop_stream_events():
                streams.setdefault(event.request_id, []).append(event.token_id)
                # steps arrive in order, exactly once
                assert event.step == seen_steps.get(event.request_id, 0)
                seen_steps[event.request_id] = event.step + 1
        assert server.pop_stream_events() == []
        for output in server.outputs:
            assert streams[output.request_id] == output.token_ids


class TestSchedulerRegistry:
    def test_canonical_names(self):
        assert set(available_schedulers()) == {"fcfs", "priority", "sjf"}

    @pytest.mark.parametrize("alias,canonical", [
        ("FIFO", "fcfs"),
        ("Priority", "priority"),
        ("shortest-prompt-first", "sjf"),
        ("SPF", "sjf"),
    ])
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_scheduler_name(alias) == canonical

    def test_unknown_scheduler_raises_with_available(self):
        with pytest.raises(KeyError, match="fcfs"):
            make_scheduler("round-robin")

    def test_server_rejects_unknown_scheduler(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        with pytest.raises(KeyError):
            SpeContextServer(
                tiny_gqa_model,
                pool_config(tiny_tokenizer, scheduler="nope"),
            )


class TestCli:
    def test_cli_reports_pool_and_preemption_stats(self, capsys):
        from repro.serving import cli

        rc = cli.main([
            "--requests", "4", "--max-new-tokens", "4", "--prompt-len", "40",
            "--policies", "quest,streaming", "--pool-blocks", "64",
            "--block-size", "8", "--scheduler", "priority",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "continuous batching" in out
        assert "preemptions" in out
        assert "priority scheduling" in out

    @pytest.mark.parametrize("argv", [
        ["--policies", "not-a-policy"],
        ["--scheduler", "not-a-scheduler"],
    ])
    def test_cli_rejects_unknown_names(self, argv, capsys):
        from repro.serving import cli

        assert cli.main(argv) == 2
        assert "available" in capsys.readouterr().err


class TestPr1RegressionUnderPool:
    """The PR-1 guarantee, re-pinned on the pool-backed server."""

    def eight_policy_requests(self, tokenizer, max_new_tokens=6):
        requests = []
        for i, name in enumerate(ALL_NAMES):
            prompt, _, _ = make_recall_prompt(
                tokenizer, np.random.default_rng(100 + i), n_filler=120
            )
            requests.append(GenerationRequest(
                prompt,
                sampling=SamplingParams(max_new_tokens=max_new_tokens),
                policy=name,
                budget=48 if i % 2 else 64,
            ))
        return requests

    def config(self, tokenizer, **overrides):
        overrides.setdefault("max_concurrency", 4)
        return pool_config(tokenizer, **overrides)

    def test_batched_equals_solo_all_policies(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        requests = self.eight_policy_requests(tiny_tokenizer)
        solo = solo_token_streams(
            tiny_gqa_model, self.config(tiny_tokenizer), requests, clone
        )
        solo_generated = sum(len(s) for s in solo)
        batched = SpeContextServer(tiny_gqa_model, self.config(tiny_tokenizer))
        for request in requests:
            batched.add_request(clone(request))
        outputs = batched.run()
        assert [o.token_ids for o in outputs] == solo
        assert batched.meter.generated_tokens == solo_generated

    def test_batched_equals_solo_under_forced_preemption(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """All 8 policies at fixed seed with a pool too small for the
        batch: completion requires preemption, streams stay identical."""
        # Generations cross >= 3 block boundaries each; the pool holds two
        # prompts plus one spare block, so two co-resident sessions must
        # fight over growth blocks and the loser is preempted.
        requests = self.eight_policy_requests(tiny_tokenizer, max_new_tokens=24)
        solo = solo_token_streams(
            tiny_gqa_model, self.config(tiny_tokenizer), requests, clone
        )
        pool = SpeContextServer(
            tiny_gqa_model, self.config(tiny_tokenizer)
        ).pool
        prompt_blocks = max(
            pool.blocks_for_tokens(r.prompt_len) for r in requests
        )
        server = SpeContextServer(
            tiny_gqa_model,
            self.config(
                tiny_tokenizer,
                pool_blocks=2 * prompt_blocks + 1,
                max_concurrency=8,
            ),
        )
        for request in requests:
            server.add_request(clone(request))
        outputs = server.run()
        assert len(server.preemption_log) > 0
        assert [o.token_ids for o in outputs] == solo
        assert server.meter.generated_tokens == sum(len(s) for s in solo)


def assert_outputs_bit_identical(batched_outputs, sequential_outputs):
    """Full GenerationOutput equality: tokens, stats and selection history."""
    assert len(batched_outputs) == len(sequential_outputs)
    for b, s in zip(batched_outputs, sequential_outputs):
        assert b.request_id == s.request_id
        assert b.token_ids == s.token_ids, b.request_id
        assert b.finish_reason == s.finish_reason
        sb, ss = b.stats, s.stats
        assert sb.budget == ss.budget
        assert sb.bytes_transferred == ss.bytes_transferred
        assert sb.transfer_reduction == ss.transfer_reduction
        assert sb.mean_selection_overlap == ss.mean_selection_overlap
        assert sb.preemptions == ss.preemptions
        assert sb.swap_bytes == ss.swap_bytes
        assert sb.prefix_reused_tokens == ss.prefix_reused_tokens
        assert len(sb.offload_events) == len(ss.offload_events)
        assert len(sb.result.selections) == len(ss.result.selections)
        for step_b, step_s in zip(sb.result.selections, ss.result.selections):
            assert step_b.keys() == step_s.keys()
            for layer, selection in step_s.items():
                assert np.array_equal(step_b[layer], selection), (
                    b.request_id, layer,
                )


class TestBatchedDecodeEquivalence:
    """The tentpole guarantee: the fused server-wide decode path is
    bit-identical to the sequential reference for every policy — tokens,
    selection histories, GenerationStats and prefix-cache reuse — also
    under forced preemption."""

    def eight_policy_requests(self, tokenizer, max_new_tokens=8):
        requests = []
        for i, name in enumerate(ALL_NAMES):
            prompt, _, _ = make_recall_prompt(
                tokenizer, np.random.default_rng(700 + i), n_filler=110 + 5 * i
            )
            requests.append(GenerationRequest(
                prompt,
                sampling=SamplingParams(max_new_tokens=max_new_tokens),
                policy=name,
                budget=48 if i % 2 else 64,
                priority=i % 3,
            ))
        return requests

    def run_pair(self, model, tokenizer, requests, trace_seed=11, **overrides):
        """Replay one seeded trace through a batched and a sequential
        server; returns (batched_server, sequential_server, outputs)."""
        servers, outputs = [], []
        for batched in (True, False):
            config = pool_config(tokenizer, batched_decode=batched, **overrides)
            server = SpeContextServer(model, config)
            trace = poisson_trace(
                np.random.default_rng(trace_seed),
                [clone(r) for r in requests],
                1.5,
            )
            outputs.append(replay_trace(server, trace))
            servers.append(server)
        return servers[0], servers[1], outputs[0], outputs[1]

    def test_all_policies_bit_identical(self, tiny_gqa_model, tiny_tokenizer):
        requests = self.eight_policy_requests(tiny_tokenizer)
        batched, sequential, b_out, s_out = self.run_pair(
            tiny_gqa_model, tiny_tokenizer, requests
        )
        assert_outputs_bit_identical(b_out, s_out)
        assert batched.meter.generated_tokens == sequential.meter.generated_tokens
        assert [e.token_id for e in batched.pop_stream_events()] == [
            e.token_id for e in sequential.pop_stream_events()
        ]

    def test_all_policies_bit_identical_under_forced_preemption(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Pool sized for two prompts plus one spare block: completion
        requires preemption in both modes; everything still matches."""
        requests = self.eight_policy_requests(tiny_tokenizer, max_new_tokens=24)
        pool = SpeContextServer(
            tiny_gqa_model, pool_config(tiny_tokenizer)
        ).pool
        prompt_blocks = max(
            pool.blocks_for_tokens(r.prompt_len) for r in requests
        )
        batched, sequential, b_out, s_out = self.run_pair(
            tiny_gqa_model,
            tiny_tokenizer,
            requests,
            pool_blocks=2 * prompt_blocks + 1,
        )
        assert len(batched.preemption_log) > 0
        assert len(sequential.preemption_log) > 0
        assert_outputs_bit_identical(b_out, s_out)

    @pytest.mark.parametrize("mode", ["swap", "recompute"])
    def test_preempt_modes_bit_identical(
        self, mode, tiny_gqa_model, tiny_tokenizer
    ):
        policies = RECOMPUTE_EXACT if mode == "recompute" else ALL_NAMES
        requests = [
            GenerationRequest(
                filler_prompt(tiny_tokenizer, 70 + i, 28),
                SamplingParams(max_new_tokens=14),
                policy=policies[i % len(policies)],
            )
            for i in range(4)
        ]
        batched, sequential, b_out, s_out = self.run_pair(
            tiny_gqa_model,
            tiny_tokenizer,
            requests,
            pool_blocks=9,
            preempt_mode=mode,
        )
        assert len(batched.preemption_log) > 0
        assert_outputs_bit_identical(b_out, s_out)

    def test_prefix_cache_reuse_identical(self, tiny_gqa_model, tiny_tokenizer):
        prefix = [
            int(t)
            for t in tiny_tokenizer.random_filler_ids(
                np.random.default_rng(42), 48
            )
        ]
        requests = [
            GenerationRequest(
                filler_prompt(tiny_tokenizer, 800 + i, 20, prefix=prefix),
                SamplingParams(max_new_tokens=4),
                policy=ALL_NAMES[i % len(ALL_NAMES)],
            )
            for i in range(6)
        ]
        batched, sequential, b_out, s_out = self.run_pair(
            tiny_gqa_model, tiny_tokenizer, requests
        )
        assert_outputs_bit_identical(b_out, s_out)
        for server in (batched, sequential):
            assert server.pool.stats.prefix_hits > 0
        assert (
            batched.pool.stats.prefix_blocks_reused
            == sequential.pool.stats.prefix_blocks_reused
        )
        assert (
            batched.pool.stats.prefill_blocks_allocated
            == sequential.pool.stats.prefill_blocks_allocated
        )

    @pytest.mark.parametrize("scheduler", ["fcfs", "priority", "sjf"])
    def test_same_step_completion_under_pressure_bit_identical(
        self, scheduler, tiny_gqa_model, tiny_tokenizer
    ):
        """Sessions finishing in the very step a peer needs their blocks:
        the sequential loop frees a finished session's blocks *before* the
        next session's reservation, so the batched planner must flush its
        wave rather than preempt a session the reference path would have
        let finish. Varied generation lengths make completions land on
        many different pressure steps."""
        requests = [
            GenerationRequest(
                filler_prompt(tiny_tokenizer, 60 + i, 26),
                SamplingParams(max_new_tokens=4 + 5 * i),
                policy=ALL_NAMES[i % len(ALL_NAMES)],
                priority=i % 3,
            )
            for i in range(6)
        ]
        pool = SpeContextServer(
            tiny_gqa_model, pool_config(tiny_tokenizer)
        ).pool
        prompt_blocks = max(
            pool.blocks_for_tokens(r.prompt_len) for r in requests
        )
        batched, sequential, b_out, s_out = self.run_pair(
            tiny_gqa_model,
            tiny_tokenizer,
            requests,
            pool_blocks=2 * prompt_blocks + 1,
            scheduler=scheduler,
        )
        assert_outputs_bit_identical(b_out, s_out)
        assert [
            (e.request_id, e.clock, e.blocks_freed, e.kv_bytes)
            for e in batched.preemption_log
        ] == [
            (e.request_id, e.clock, e.blocks_freed, e.kv_bytes)
            for e in sequential.preemption_log
        ]

    def test_float32_kv_bit_identical_between_paths(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Reduced-precision KV storage serves faster but never splits the
        two decode paths apart."""
        requests = self.eight_policy_requests(tiny_tokenizer, max_new_tokens=6)
        batched, sequential, b_out, s_out = self.run_pair(
            tiny_gqa_model, tiny_tokenizer, requests, kv_dtype="float32"
        )
        assert_outputs_bit_identical(b_out, s_out)

    def test_batched_default_on(self, tiny_tokenizer):
        assert EngineConfig(bos_id=tiny_tokenizer.bos_id).batched_decode is True
