"""Tests for the per-channel quantization used by the ShadowKV baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import dequantize, quantize_per_channel


class TestQuantization:
    def test_roundtrip_error_bounded_by_step(self):
        x = np.random.default_rng(0).standard_normal((8, 64))
        q = quantize_per_channel(x, bits=8)
        err = np.abs(dequantize(q) - x)
        assert np.all(err <= q.scale / 2 + 1e-9)

    def test_lower_bits_coarser(self):
        x = np.random.default_rng(1).standard_normal((4, 128))
        err4 = np.abs(dequantize(quantize_per_channel(x, bits=4)) - x).mean()
        err8 = np.abs(dequantize(quantize_per_channel(x, bits=8)) - x).mean()
        assert err4 > err8

    def test_constant_channel(self):
        x = np.full((2, 16), 3.25)
        q = quantize_per_channel(x, bits=4)
        np.testing.assert_allclose(dequantize(q), x, atol=1e-6)

    def test_codes_within_levels(self):
        x = np.random.default_rng(2).standard_normal((4, 32)) * 100
        q = quantize_per_channel(x, bits=4)
        assert q.codes.min() >= 0
        assert q.codes.max() <= 15

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_per_channel(np.zeros((2, 2)), bits=1)

    def test_nbytes_smaller_than_fp16(self):
        x = np.random.default_rng(3).standard_normal((64, 128))
        q = quantize_per_channel(x, bits=4)
        fp16_bytes = x.size * 2
        assert q.nbytes < fp16_bytes

    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=32),
            elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
        ),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_reconstruction_within_scale(self, x, bits):
        q = quantize_per_channel(x, bits=bits)
        recon = dequantize(q)
        assert np.all(np.abs(recon - x) <= q.scale + 1e-6)

    def test_quantized_scores_rank_correlates(self):
        """ShadowKV's premise: scores on 4-bit keys rank like full keys."""
        rng = np.random.default_rng(4)
        keys = rng.standard_normal((256, 64))
        query = rng.standard_normal(64)
        exact = keys @ query
        approx = dequantize(quantize_per_channel(keys, bits=4)) @ query
        top_exact = set(np.argsort(-exact)[:32].tolist())
        top_approx = set(np.argsort(-approx)[:32].tolist())
        overlap = len(top_exact & top_approx) / 32
        assert overlap > 0.8
