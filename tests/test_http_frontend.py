"""HTTP + SSE frontend tests: endpoints, validation, streams, drain.

Drives the real asyncio server over loopback sockets (no test client
shims): each case boots :class:`~repro.serving.http.HttpServer` on an
ephemeral port, speaks raw HTTP/1.1, and checks

- the OpenAI completions shape (non-streaming and SSE) returns exactly
  the tokens a direct :class:`SpeContextServer` run produces;
- typed validation failures surface as structured 4xx bodies with
  stable ``code`` values;
- ``/healthz`` tracks worker quarantine (ok -> degraded -> 503);
- graceful drain finishes in-flight requests before exiting.

No pytest-asyncio: every test wraps its coroutine in ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import numpy as np

from repro.api import (
    ClusterConfig,
    EngineConfig,
    GenerationRequest,
    SamplingParams,
)
from repro.serving.engine import InProcessExecutor
from repro.serving.http import (
    AsyncEngine,
    HttpServer,
    parse_completion_body,
    serve_async,
)
from repro.serving.server import SpeContextServer


def engine_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def filler_prompt(tokenizer, n: int = 20, seed: int = 5) -> list[int]:
    rng = np.random.default_rng(seed)
    return [tokenizer.bos_id] + [
        int(t) for t in tokenizer.random_filler_ids(rng, n)
    ]


@contextlib.asynccontextmanager
async def running_server(model, tokenizer, n_workers: int = 2):
    executor = InProcessExecutor(
        model,
        engine_config(tokenizer),
        ClusterConfig(n_replicas=n_workers, router="round_robin"),
    )
    server = HttpServer(AsyncEngine(executor), tokenizer)
    await server.start("127.0.0.1", 0)
    try:
        yield server, server.addresses[0][1]
    finally:
        await server.stop()
        await server.engine.close()


async def raw_request(port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionResetError, BrokenPipeError):
        await writer.wait_closed()
    return response


def http_payload(method: str, path: str, body: bytes = b"") -> bytes:
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: test\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def split_response(response: bytes) -> tuple[int, bytes]:
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


async def request_json(port: int, method: str, path: str, obj=None):
    body = json.dumps(obj).encode() if obj is not None else b""
    status, payload = split_response(
        await raw_request(port, http_payload(method, path, body))
    )
    return status, json.loads(payload)


def sse_chunks(body: bytes) -> list:
    chunks = []
    for block in body.split(b"\n\n"):
        if not block.startswith(b"data: "):
            continue
        data = block[len(b"data: "):]
        chunks.append(None if data == b"[DONE]" else json.loads(data))
    return chunks


def solo_tokens(model, tokenizer, prompt: list[int], max_new: int) -> list[int]:
    """Ground truth: the same request on a bare single server."""
    server = SpeContextServer(model, engine_config(tokenizer))
    server.add_request(GenerationRequest(
        np.asarray(prompt, dtype=np.int64),
        sampling=SamplingParams(
            max_new_tokens=max_new, stop_ids=(tokenizer.eos_id,)
        ),
    ))
    [output] = server.run()
    return list(output.token_ids)


# ---- endpoints ---------------------------------------------------------------


class TestEndpoints:
    def test_models_healthz_stats(self, tiny_gqa_model, tiny_tokenizer):
        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (server, port):
                status, models = await request_json(port, "GET", "/v1/models")
                assert status == 200
                assert models["data"][0]["id"] == server.model_name
                status, health = await request_json(port, "GET", "/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert [w["alive"] for w in health["workers"]] == [True, True]
                status, stats = await request_json(port, "GET", "/stats")
                assert status == 200
                assert stats["executor"] == "inproc"
                assert stats["inflight"] == 0
                assert stats["routing"]["routed"] == [0, 0]
                status, error = await request_json(port, "GET", "/nope")
                assert status == 404
                assert error["error"]["code"] == "not_found"
        asyncio.run(scenario())

    def test_completion_matches_direct_server(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        prompt = filler_prompt(tiny_tokenizer)
        expected = solo_tokens(tiny_gqa_model, tiny_tokenizer, prompt, 6)

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (_, port):
                status, body = await request_json(
                    port, "POST", "/v1/completions",
                    {"prompt": prompt, "max_tokens": 6},
                )
                assert status == 200
                assert body["object"] == "text_completion"
                [choice] = body["choices"]
                assert choice["token_ids"] == expected
                assert choice["text"] == tiny_tokenizer.decode(expected)
                assert choice["finish_reason"] in ("stop", "length")
                assert body["usage"] == {
                    "prompt_tokens": len(prompt),
                    "completion_tokens": len(expected),
                    "total_tokens": len(prompt) + len(expected),
                }
        asyncio.run(scenario())

    def test_string_prompt_roundtrips_the_tokenizer(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        prompt_ids = filler_prompt(tiny_tokenizer, n=12)[1:]  # no bos token
        text = tiny_tokenizer.decode(prompt_ids)
        request, stream, _ = parse_completion_body(
            json.dumps({"prompt": text}).encode(), tiny_tokenizer
        )
        assert list(request.prompt_ids) == prompt_ids
        assert stream is False

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (_, port):
                status, body = await request_json(
                    port, "POST", "/v1/completions",
                    {"prompt": text, "max_tokens": 4},
                )
                assert status == 200
                assert len(body["choices"][0]["token_ids"]) <= 4
        asyncio.run(scenario())

    def test_streaming_sse_bit_matches_nonstreaming(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        prompt = filler_prompt(tiny_tokenizer, seed=9)
        expected = solo_tokens(tiny_gqa_model, tiny_tokenizer, prompt, 5)

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (_, port):
                body = json.dumps({
                    "prompt": prompt, "max_tokens": 5, "stream": True,
                }).encode()
                response = await raw_request(
                    port, http_payload("POST", "/v1/completions", body)
                )
                assert b"text/event-stream" in response
                chunks = sse_chunks(response.split(b"\r\n\r\n", 1)[1])
                assert chunks[-1] is None  # [DONE] sentinel closes
                *tokens, final, _ = chunks
                streamed = [
                    t for c in tokens for t in c["choices"][0]["token_ids"]
                ]
                assert streamed == expected
                assert final["choices"][0]["finish_reason"] in (
                    "stop", "length"
                )
                text = "".join(c["choices"][0]["text"] for c in tokens)
                assert text == tiny_tokenizer.decode(expected)
        asyncio.run(scenario())

    def test_concurrent_streams_interleave(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        prompts = [filler_prompt(tiny_tokenizer, seed=s) for s in (21, 22, 23)]
        expected = [
            solo_tokens(tiny_gqa_model, tiny_tokenizer, p, 4) for p in prompts
        ]

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (_, port):
                responses = await asyncio.gather(*(
                    request_json(
                        port, "POST", "/v1/completions",
                        {"prompt": p, "max_tokens": 4},
                    )
                    for p in prompts
                ))
                for (status, body), tokens in zip(responses, expected):
                    assert status == 200
                    assert body["choices"][0]["token_ids"] == tokens
        asyncio.run(scenario())


# ---- validation --------------------------------------------------------------


BAD_BODIES = (
    (b"{not json", "invalid_json"),
    (b'"just a string"', "invalid_json"),
    (
        json.dumps({"prompt": [1, 2], "max_tokenz": 4}).encode(),
        "unknown_field",
    ),
    (json.dumps({"prompt": 42}).encode(), "invalid_prompt"),
    (json.dumps({"prompt": [1, 2.5]}).encode(), "invalid_prompt"),
    (json.dumps({"prompt": ""}).encode(), "empty_prompt"),
    (json.dumps({"prompt": "   "}).encode(), "empty_prompt"),
    (
        json.dumps({"prompt": [1, 2], "max_tokens": 0}).encode(),
        "invalid_sampling_params",
    ),
    (
        json.dumps({"prompt": [1, 2], "temperature": -1}).encode(),
        "invalid_sampling_params",
    ),
    (
        json.dumps({"prompt": [1, 2], "top_p": 0}).encode(),
        "invalid_sampling_params",
    ),
    (
        json.dumps({"prompt": [1, 2], "max_tokens": "lots"}).encode(),
        "invalid_type",
    ),
    (
        json.dumps({"prompt": [1, 2], "stream": "yes"}).encode(),
        "invalid_type",
    ),
)


class TestValidation:
    def test_structured_4xx_codes(self, tiny_gqa_model, tiny_tokenizer):
        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (_, port):
                for body, code in BAD_BODIES:
                    status, payload = split_response(await raw_request(
                        port, http_payload("POST", "/v1/completions", body)
                    ))
                    error = json.loads(payload)["error"]
                    assert status == 400, (body, payload)
                    assert error["code"] == code, (body, error)
                    assert error["type"] == "invalid_request_error"
                # Worker-side rejection carries its typed code too.
                status, payload = await request_json(
                    port, "POST", "/v1/completions",
                    {"prompt": [1, 2, 3], "policy": "not-a-policy"},
                )
                assert status == 400
                assert payload["error"]["code"] == "unknown_policy"
        asyncio.run(scenario())

    def test_oversized_and_malformed_requests(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (_, port):
                status, payload = split_response(await raw_request(
                    port,
                    b"POST /v1/completions HTTP/1.1\r\n"
                    b"Content-Length: 99999999\r\n\r\n",
                ))
                assert status == 413
                status, payload = split_response(
                    await raw_request(port, b"GARBAGE\r\n\r\n")
                )
                assert status == 400
        asyncio.run(scenario())


# ---- health + lifecycle ------------------------------------------------------


class TestLifecycle:
    def test_health_degrades_with_worker_deaths(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (server, port):
                engine = server.engine
                await engine.call(engine.executor.kill_worker, 0)
                status, health = await request_json(port, "GET", "/healthz")
                assert status == 200
                assert health["status"] == "degraded"
                assert [w["alive"] for w in health["workers"]] == [
                    False, True,
                ]
                await engine.call(engine.executor.kill_worker, 1)
                status, health = await request_json(port, "GET", "/healthz")
                assert status == 503
                assert health["status"] == "dead"
                status, payload = await request_json(
                    port, "POST", "/v1/completions", {"prompt": [1, 2]}
                )
                assert status == 503
                assert payload["error"]["code"] == "engine_unavailable"
        asyncio.run(scenario())

    def test_client_disconnect_aborts_request(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        prompt = filler_prompt(tiny_tokenizer)

        async def scenario():
            async with running_server(
                tiny_gqa_model, tiny_tokenizer
            ) as (server, port):
                body = json.dumps({
                    "prompt": prompt, "max_tokens": 512, "stream": True,
                }).encode()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(http_payload("POST", "/v1/completions", body))
                await writer.drain()
                await reader.readuntil(b"\n\n")  # first SSE frame arrived
                writer.close()  # hang up mid-stream
                with contextlib.suppress(
                    ConnectionResetError, BrokenPipeError
                ):
                    await writer.wait_closed()
                engine = server.engine
                for _ in range(200):
                    inflight = await engine.call(
                        lambda: len(engine.executor._inflight)
                    )
                    if inflight == 0:
                        break
                    await asyncio.sleep(0.05)
                assert inflight == 0  # aborted well before 512 tokens
        asyncio.run(scenario())

    def test_graceful_drain_finishes_inflight_work(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        prompt = filler_prompt(tiny_tokenizer, seed=17)
        expected = solo_tokens(tiny_gqa_model, tiny_tokenizer, prompt, 8)

        async def scenario():
            executor = InProcessExecutor(
                tiny_gqa_model,
                engine_config(tiny_tokenizer),
                ClusterConfig(n_replicas=2, router="round_robin"),
            )
            server = HttpServer(AsyncEngine(executor), tiny_tokenizer)
            stop, ready = asyncio.Event(), asyncio.Event()
            task = asyncio.create_task(serve_async(
                server, "127.0.0.1", 0, stop=stop, ready=ready,
                install_signal_handlers=False,
            ))
            await ready.wait()
            port = server.addresses[0][1]
            request = asyncio.create_task(request_json(
                port, "POST", "/v1/completions",
                {"prompt": prompt, "max_tokens": 8},
            ))
            while not executor.has_unfinished:  # request must be in flight
                await asyncio.sleep(0.01)
            stop.set()
            status, body = await request
            assert status == 200
            assert body["choices"][0]["token_ids"] == expected
            await asyncio.wait_for(task, timeout=30)
            assert server.engine.accepting is False
        asyncio.run(scenario())
