"""Tests for the performance simulator (engines, placement, OOM, shapes)."""

from __future__ import annotations

import pytest

from repro.hardware.spec import CLOUD_A800, EDGE_RTX4060_4GB
from repro.models.config import DEEPSEEK_MLA_LIKE_8B, EDGE_LIKE_1B, LLAMA_LIKE_8B
from repro.perf.engines import (
    CLUSTERKV,
    FLASHINFER,
    HF_EAGER,
    HF_EAGER_OFFLOAD,
    HF_FLASH_ATTENTION,
    QUEST,
    SHADOWKV,
    SPECONTEXT,
    SPECONTEXT_C1,
    SPECONTEXT_C1_C2,
    OffloadPolicy,
    engine_by_name,
)
from repro.perf.simulate import PerfSimulator, Workload


@pytest.fixture(scope="module")
def cloud():
    return PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, budget=2048)


@pytest.fixture(scope="module")
def edge():
    return PerfSimulator(EDGE_LIKE_1B, EDGE_RTX4060_4GB, budget=2048)


class TestConstruction:
    def test_overlap_validated(self):
        with pytest.raises(ValueError):
            PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, overlap=1.5)

    def test_engine_lookup(self):
        assert engine_by_name("Ours") is SPECONTEXT
        with pytest.raises(KeyError):
            engine_by_name("vllm")

    def test_ablation_flags(self):
        assert not SPECONTEXT_C1.elastic and not SPECONTEXT_C1.adaptive_memory
        assert SPECONTEXT_C1_C2.elastic and not SPECONTEXT_C1_C2.adaptive_memory
        assert SPECONTEXT.elastic and SPECONTEXT.adaptive_memory


class TestAttendedLength:
    def test_full_attention_attends_everything(self, cloud):
        assert cloud.attended_len(FLASHINFER, 30000, 2000) == 30000

    def test_baseline_retains_generated(self, cloud):
        """Challenge 2: budget covers the prompt, generated grows on top."""
        attended = cloud.attended_len(QUEST, 18000, 2000)
        assert attended == 2000 + 16000

    def test_ours_attends_budget_only(self, cloud):
        assert cloud.attended_len(SPECONTEXT, 18000, 2000) == 2048

    def test_short_sequences_uncapped(self, cloud):
        assert cloud.attended_len(SPECONTEXT, 1000, 500) == 1000


class TestPlacement:
    def test_never_policy_keeps_all_layers(self, cloud):
        assert cloud.placement(HF_EAGER, 100_000, 4, True) == 32

    def test_full_cpu_keeps_none(self, cloud):
        assert cloud.placement(HF_EAGER_OFFLOAD, 1000, 1, True) == 0

    def test_adaptive_degrades_with_length(self, cloud):
        short = cloud.placement(SPECONTEXT, 4096, 32, True)
        long = cloud.placement(SPECONTEXT, 32768, 32, True)
        assert short >= long

    def test_static_cliff(self, cloud):
        static = HF_FLASH_ATTENTION.with_(offload=OffloadPolicy.STATIC)
        assert cloud.placement(static, 8192, 4, True) == 32
        assert cloud.placement(static, 8192, 4, False) == 0


class TestOOM:
    def test_eager_prefill_scores_oom_at_long_input(self, cloud):
        reason = cloud.oom_reason(HF_EAGER, Workload(16384, 2048, 4))
        assert "transient" in reason or "GB" in reason

    def test_flash_attention_fits_same_workload(self, cloud):
        assert cloud.oom_reason(HF_FLASH_ATTENTION, Workload(16384, 2048, 4)) == ""

    def test_kv_growth_oom_at_large_batch(self, cloud):
        assert cloud.oom_reason(FLASHINFER, Workload(2048, 32768, 64)) != ""

    def test_adaptive_engine_survives_large_batch(self, cloud):
        assert cloud.oom_reason(SPECONTEXT, Workload(2048, 32768, 32)) == ""

    def test_edge_eager_oom_at_16k_prompt(self, edge):
        assert edge.oom_reason(HF_EAGER_OFFLOAD, Workload(16384, 2048, 1)) != ""


class TestThroughputShapes:
    def test_engine_order_cloud(self, cloud):
        """Ours > FlashInfer > FlashAttention > Eager on the reasoning mix."""
        mix = Workload(2048, 16384, 4)
        tps = {
            engine.name: cloud.simulate(
                engine, mix, n_samples=8
            ).decode_tokens_per_second
            for engine in (HF_EAGER, HF_FLASH_ATTENTION, FLASHINFER, SPECONTEXT)
        }
        assert (
            tps["Ours"] > tps["Full Attn(FlashInfer)"]
            > tps["Full Attn(Flash Attn)"] > tps["Full Attn(Eager)"]
        )

    def test_decode_slows_with_longer_outputs(self, cloud):
        short = cloud.simulate(FLASHINFER, Workload(2048, 8192, 8), n_samples=8)
        long = cloud.simulate(FLASHINFER, Workload(2048, 32768, 8), n_samples=8)
        assert short.decode_tokens_per_second > long.decode_tokens_per_second

    def test_ours_insensitive_to_output_length(self, cloud):
        short = cloud.simulate(SPECONTEXT, Workload(2048, 8192, 8), n_samples=8)
        long = cloud.simulate(SPECONTEXT, Workload(2048, 32768, 8), n_samples=8)
        ratio = short.decode_tokens_per_second / long.decode_tokens_per_second
        assert ratio < 2.0  # far flatter than full attention's ~4x

    def test_elastic_beats_non_elastic_when_offloaded(self, cloud):
        mix = Workload(2048, 16384, 32)
        c1 = cloud.simulate(SPECONTEXT_C1, mix, n_samples=8)
        c2 = cloud.simulate(SPECONTEXT_C1_C2, mix, n_samples=8)
        assert c2.decode_tokens_per_second > c1.decode_tokens_per_second

    def test_elastic_beats_infinigen_style_prefetch(self, edge):
        """Fig. 7: SpeContext's pre-pass elastic prefetch beats per-layer
        speculative prefetch (InfiniGen) on the same offloaded workload."""
        from repro.perf.engines import INFINIGEN

        mix = Workload(2048, 16384, 1)
        ours = edge.simulate(SPECONTEXT, mix, n_samples=8)
        infinigen = edge.simulate(INFINIGEN, mix, n_samples=8)
        assert ours.decode_tokens_per_second > infinigen.decode_tokens_per_second

    def test_edge_ours_beats_offloaded_baselines(self, edge):
        mix = Workload(2048, 16384, 1)
        ours = edge.simulate(SPECONTEXT, mix, n_samples=8)
        eager = edge.simulate(HF_EAGER_OFFLOAD, mix, n_samples=8)
        shadow = edge.simulate(SHADOWKV, mix, n_samples=8)
        assert ours.tokens_per_second > shadow.tokens_per_second
        assert ours.tokens_per_second > 3 * eager.tokens_per_second

    def test_preprocessing_penalizes_prefill(self, cloud):
        mix = Workload(32768, 512, 1)
        cluster = cloud.simulate(CLUSTERKV, mix, n_samples=8)
        quest = cloud.simulate(QUEST, mix, n_samples=8)
        # ClusterKV's k-means costs far more prefill than Quest's paging.
        assert cluster.prefill_s > quest.prefill_s

    def test_oom_timeline_reports_zero_throughput(self, cloud):
        timeline = cloud.simulate(HF_EAGER, Workload(32768, 2048, 4), n_samples=8)
        assert timeline.oom
        assert timeline.tokens_per_second == 0.0


class TestMLA:
    def test_mla_model_simulates(self):
        sim = PerfSimulator(DEEPSEEK_MLA_LIKE_8B, CLOUD_A800, budget=2048)
        timeline = sim.simulate(SPECONTEXT, Workload(2048, 8192, 8), n_samples=8)
        assert not timeline.oom
        assert timeline.decode_tokens_per_second > 0

    def test_mla_kv_footprint_smaller(self):
        # The latent cache is far smaller than GQA K+V.
        assert (
            DEEPSEEK_MLA_LIKE_8B.kv_bytes_per_token_layer()
            < LLAMA_LIKE_8B.kv_bytes_per_token_layer()
        )


class TestWorkload:
    def test_labels(self):
        assert Workload(2048, 16384).label == "[2k, 16k]"
        assert Workload(1000, 500).label == "[1000, 500]"

    def test_final_len(self):
        assert Workload(100, 200).final_len == 300
