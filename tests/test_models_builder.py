"""Tests for the analytic circuit construction (models/builder.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.builder import (
    CircuitPlan,
    build_recall_model,
    content_dim,
    head_roles,
    make_content_vectors,
)
from repro.models.config import AttentionKind, tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from tests.conftest import make_recall_prompt


class TestContentVectors:
    def test_unit_norm(self):
        rng = np.random.default_rng(0)
        vectors = make_content_vectors(64, 16, rng)
        np.testing.assert_allclose(
            np.linalg.norm(vectors, axis=1), 1.0, rtol=1e-5
        )

    def test_correlation_raises_intra_cluster_cosine(self):
        rng = np.random.default_rng(1)
        low = make_content_vectors(256, 32, np.random.default_rng(1), correlation=0.0)
        high = make_content_vectors(256, 32, np.random.default_rng(1), correlation=0.8)

        def mean_abs_cos(v):
            sims = v @ v.T
            off = sims[~np.eye(len(v), dtype=bool)]
            return np.abs(off).mean()

        assert mean_abs_cos(high) > mean_abs_cos(low)


class TestLayout:
    def test_content_dim_requires_circuit_layout(self):
        config = tiny_test_config()
        assert content_dim(config) == config.head_dim
        bad = config.with_(d_model=config.d_model + 1)
        with pytest.raises(ValueError):
            content_dim(bad)

    def test_head_roles_layer0_has_prev(self):
        config = tiny_test_config()
        roles = head_roles(config, layer=0)
        assert roles[0] == "prev"
        assert len(roles) == config.n_kv_heads

    def test_head_roles_later_layers_have_induction(self):
        config = tiny_test_config()
        for layer in (1, 2, 3):
            assert head_roles(config, layer)[0] == "induction"

    def test_mla_roles_per_q_head(self):
        config = tiny_test_config(AttentionKind.MLA)
        assert len(head_roles(config, 1)) == config.n_q_heads

    def test_vocab_mismatch_rejected(self):
        config = tiny_test_config(vocab_size=512)
        tokenizer = SyntheticTokenizer(256)
        with pytest.raises(ValueError):
            build_recall_model(config, tokenizer, np.random.default_rng(0))


class TestCircuitFunction:
    @pytest.mark.parametrize(
        "attention",
        [AttentionKind.MHA, AttentionKind.GQA, AttentionKind.MQA, AttentionKind.MLA],
    )
    def test_recall_works_for_every_attention_family(self, attention):
        rng = np.random.default_rng(7)
        tokenizer = SyntheticTokenizer(512)
        config = tiny_test_config(attention, n_layers=2)
        model = TransformerLM(build_recall_model(config, tokenizer, rng))
        prompt, expected, _ = make_recall_prompt(tokenizer, rng, n_filler=200)
        result = model.generate(prompt, 1, sparse_from_first_token=True)
        assert result.token_ids[0] == expected

    def test_chained_recall_across_decode_steps(self, tiny_tokenizer):
        """A planted chain 'k v1 v2 v3' is followed autoregressively."""
        rng = np.random.default_rng(8)
        config = tiny_test_config(n_layers=2)
        model = TransformerLM(build_recall_model(config, tiny_tokenizer, rng))
        key, v1, v2, v3 = (
            int(t) for t in tiny_tokenizer.random_content_ids(rng, 4)
        )
        filler = [int(t) for t in tiny_tokenizer.random_filler_ids(rng, 120)]
        prompt = (
            [tiny_tokenizer.bos_id] + filler[:60] + [key, v1, v2, v3]
            + filler[60:] + [tiny_tokenizer.question_id, key]
        )
        result = model.generate(np.array(prompt), 3, sparse_from_first_token=True)
        assert result.token_ids == [v1, v2, v3]

    def test_filler_damping_disambiguates_bridges(self, tiny_tokenizer):
        """A bridge entity followed by prose in doc A and by the answer in
        doc B resolves to the answer (the multi-hop mechanism)."""
        rng = np.random.default_rng(9)
        config = tiny_test_config(n_layers=2)
        plan = CircuitPlan(filler_logit_damping=0.35)
        model = TransformerLM(
            build_recall_model(config, tiny_tokenizer, rng, plan)
        )
        key, bridge, answer = (
            int(t) for t in tiny_tokenizer.random_content_ids(rng, 3)
        )
        filler = [int(t) for t in tiny_tokenizer.random_filler_ids(rng, 140)]
        prompt = (
            [tiny_tokenizer.bos_id]
            + filler[:40] + [key, bridge] + filler[40:90]
            + [bridge, answer] + filler[90:]
            + [tiny_tokenizer.question_id, key]
        )
        result = model.generate(np.array(prompt), 2, sparse_from_first_token=True)
        assert result.token_ids == [bridge, answer]

    def test_determinism_per_seed(self, tiny_tokenizer):
        config = tiny_test_config(n_layers=2)
        a = build_recall_model(config, tiny_tokenizer, np.random.default_rng(3))
        b = build_recall_model(config, tiny_tokenizer, np.random.default_rng(3))
        np.testing.assert_array_equal(a.embedding, b.embedding)
        np.testing.assert_array_equal(a.layers[0].wq, b.layers[0].wq)
