"""The robustness benchmark harness is part of the tested surface: CI
gates on its goodput-gain number, so the report schema, the cross-policy
stream-consistency check, the failover bit-identity check and the gate's
exit codes are pinned here."""

from __future__ import annotations

import importlib.util
import json
import pathlib

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "bench_robustness.py"
)
_spec = importlib.util.spec_from_file_location("bench_robustness", BENCH_PATH)
bench_robustness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_robustness)


class TestBenchRobustness:
    def run_bench(self, tmp_path, extra=()):
        out = tmp_path / "BENCH_robustness.json"
        rc = bench_robustness.main(["--smoke", "--out", str(out), *extra])
        return rc, out

    def test_report_schema_and_invariants(self, tmp_path, capsys):
        rc, out = self.run_bench(tmp_path)
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "robustness_overload"
        assert report["smoke"] is True
        assert set(report["policies"]) == {
            "accept_all", "queue_depth", "deadline_feasible"
        }
        for name, entry in report["policies"].items():
            assert entry["finished_in_slo"] + entry["shed"] + entry[
                "expired"
            ] == report["workload"]["requests"]
            assert entry["goodput_tokens_per_step"] >= 0
            assert 0.0 <= entry["slo_attainment"] <= 1.0
            if name == "accept_all":
                assert entry["shed"] == 0
        # The whole point: shedding converts deadline blowouts into
        # typed rejections and recovers goodput.
        assert report["goodput_gain"] >= 1.0
        assert report["best_policy"] != "accept_all"
        assert report["streams_consistent"] is True
        failover = report["failover"]
        assert failover["streams_identical"] is True
        assert failover["resubmissions"] >= 1
        assert "goodput" in capsys.readouterr().out

    def test_goodput_gate_exit_codes(self, tmp_path):
        rc, _ = self.run_bench(
            tmp_path, extra=("--min-goodput-gain", "1.0")
        )
        assert rc == 0
        rc, _ = self.run_bench(
            tmp_path, extra=("--min-goodput-gain", "1000.0")
        )
        assert rc == 1
