"""Tests for the synthetic LongBench task generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.tokenizer import SyntheticTokenizer
from repro.workloads.base import EntityPool, weave_context
from repro.workloads.longbench import (
    TASKS,
    generate_examples,
    make_2wikimqa,
    make_hotpotqa,
    make_passage_count,
    make_trivia,
)


@pytest.fixture(scope="module")
def tokenizer():
    return SyntheticTokenizer(2048)


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestEntityPool:
    def test_entities_disjoint(self, tokenizer, rng):
        pool = EntityPool(tokenizer, rng)
        a = pool.take(10)
        b = pool.take(10)
        assert not set(a) & set(b)
        assert all(tokenizer.is_content(t) for t in a + b)

    def test_exhaustion_raises(self, tokenizer, rng):
        pool = EntityPool(tokenizer, rng)
        with pytest.raises(ValueError):
            pool.take(tokenizer.n_content + 1)


class TestWeave:
    def test_exact_length_and_bos(self, tokenizer, rng):
        ids, starts = weave_context(tokenizer, rng, [[10, 11], [12, 13, 14]], 128)
        assert len(ids) == 128
        assert ids[0] == tokenizer.bos_id

    def test_segments_intact_at_reported_positions(self, tokenizer, rng):
        segments = [[100, 101, 102], [200, 201]]
        ids, starts = weave_context(tokenizer, rng, segments, 256)
        for seg, start in zip(segments, starts):
            assert ids[start : start + len(seg)] == seg

    def test_segments_never_adjacent(self, tokenizer, rng):
        segments = [[100], [101], [102], [103]]
        ids, starts = weave_context(tokenizer, rng, segments, 64)
        boundaries = sorted(starts)
        for a, b in zip(boundaries, boundaries[1:]):
            assert b - a >= 2  # at least one filler token between segments

    def test_too_small_context_raises(self, tokenizer, rng):
        with pytest.raises(ValueError):
            weave_context(tokenizer, rng, [[1] * 50], 52)


class TestGenerators:
    @pytest.mark.parametrize("task", sorted(TASKS))
    def test_prompt_length_and_layout(self, task, tokenizer, rng):
        example = TASKS[task](tokenizer, rng, context_len=512)
        # Context plus "<q> key".
        assert example.prompt_len == 512 + 2
        assert example.prompt_ids[0] == tokenizer.bos_id
        assert example.prompt_ids[-2] == tokenizer.question_id

    @pytest.mark.parametrize("task", sorted(TASKS))
    def test_evidence_positions_point_into_prompt(self, task, tokenizer, rng):
        example = TASKS[task](tokenizer, rng, context_len=512)
        assert example.evidence_positions
        for pos in example.evidence_positions:
            assert 0 < pos < example.prompt_len - 2

    def test_trivia_evidence_is_key_then_answer(self, tokenizer, rng):
        example = make_trivia(tokenizer, rng, context_len=512, answer_len=3)
        start = example.evidence_positions[0]
        key = int(example.prompt_ids[-1])
        assert int(example.prompt_ids[start]) == key
        planted = [int(t) for t in example.prompt_ids[start + 1 : start + 4]]
        assert planted == list(example.answer_ids)

    def test_two_hop_answer_starts_with_bridge(self, tokenizer, rng):
        example = make_2wikimqa(tokenizer, rng, context_len=512, tail_len=2)
        # Doc A is <doc> key bridge: the bridge is the token after the key.
        start_a = example.evidence_positions[0]
        bridge = int(example.prompt_ids[start_a + 2])
        assert example.answer_ids[0] == bridge

    def test_hotpot_supports_at_extremes(self, tokenizer, rng):
        example = make_hotpotqa(tokenizer, rng, context_len=512)
        positions = example.evidence_positions
        assert min(positions) < 16
        assert max(positions) > 512 - 16

    def test_passage_count_meta_and_stop(self, tokenizer, rng):
        example = make_passage_count(
            tokenizer, rng, context_len=512, n_distinct=5, n_duplicates=3
        )
        assert example.meta["true_count"] == 5
        assert example.stop_ids == (tokenizer.sep_id,)
        assert example.answer_ids[-1] == tokenizer.sep_id
        assert len(example.answer_ids) == 5  # 4 remaining pids + <sep>

    def test_passage_count_needs_two_passages(self, tokenizer, rng):
        with pytest.raises(ValueError):
            make_passage_count(tokenizer, rng, n_distinct=1)

    def test_generate_examples_batch(self, tokenizer, rng):
        examples = generate_examples("trivia", tokenizer, rng, 3, context_len=512)
        assert len(examples) == 3
        prompts = {tuple(e.prompt_ids.tolist()) for e in examples}
        assert len(prompts) == 3  # i.i.d. draws differ

    def test_unknown_task_raises(self, tokenizer, rng):
        with pytest.raises(KeyError):
            generate_examples("nope", tokenizer, rng, 1)


class TestSolvability:
    """Full attention on the constructed model must solve every task —
    the causal premise of the accuracy experiments."""

    @pytest.mark.parametrize("task", sorted(TASKS))
    def test_full_attention_solves_task(self, task, tokenizer, rng):
        from repro.experiments.common import make_functional_setup
        from repro.workloads.harness import evaluate_qa

        setup = make_functional_setup(seed=3)
        examples = generate_examples(
            task, setup.tokenizer, rng, 2, context_len=384
        )
        score = evaluate_qa(setup.model, setup.bench, examples, "Full", 10**6)
        assert score >= 0.75
