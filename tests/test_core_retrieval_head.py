"""Tests for the lightweight retrieval head (paper Sec. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
    SpeContextPolicy,
)
from repro.distill.dlm import full_dlm_analog


def make_head(model, tokenizer, noise=0.15, **kwargs):
    config = RetrievalHeadConfig(noise=noise, **kwargs)
    return LightweightRetrievalHead.from_teacher(
        model.weights, tokenizer.bos_id, np.random.default_rng(3), config=config
    )


class TestConstruction:
    def test_head_count_matches_teacher_q_heads(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        assert head.n_heads == tiny_gqa_model.config.n_q_heads

    def test_mla_head_count_matches_q_heads(self, tiny_mla_model, tiny_tokenizer):
        head = make_head(tiny_mla_model, tiny_tokenizer)
        assert head.n_heads == tiny_mla_model.config.n_q_heads

    def test_parameter_reduction_exceeds_90_percent(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        dlm = full_dlm_analog(tiny_gqa_model.config)
        reduction = 1.0 - head.parameter_count() / dlm.total_params()
        assert reduction > 0.90

    def test_shared_embedding_not_counted_by_default(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        marginal = head.parameter_count()
        with_embedding = head.parameter_count(include_shared_embedding=True)
        assert with_embedding - marginal == head.content.size


class TestKCache:
    def test_observe_extends_cache(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe([1, 2, 3])
        head.observe(7)
        assert len(head) == 4

    def test_reset_clears_cache(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe([1, 2, 3])
        head.reset()
        assert len(head) == 0

    def test_k_cache_bytes_grow_linearly(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(10)))
        ten = head.k_cache_bytes()
        head.observe(list(range(10)))
        assert head.k_cache_bytes() == 2 * ten

    def test_chunked_observe_equals_single_observe(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Deterministic-role keys are chunking-invariant (noise heads draw
        from a stream, so they are excluded)."""
        a = make_head(tiny_gqa_model, tiny_tokenizer)
        b = make_head(tiny_gqa_model, tiny_tokenizer)
        ids = list(range(10, 40))
        a.observe(ids)
        b.observe(ids[:13])
        b.observe(ids[13:])
        for h, role in enumerate(a.roles):
            if role != "noise":
                np.testing.assert_allclose(a._keys[h], b._keys[h], rtol=1e-5)

    def test_scoring_empty_cache_raises(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        with pytest.raises(RuntimeError):
            head.attention_weights(5)


class TestSelection:
    def test_attention_weights_normalized(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(8, 120)))
        weights = head.attention_weights(10)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-6)

    def test_head_level_shape_gqa(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(8, 120)))
        sel = head.select(10, budget=16, level="head")
        assert sel.shape == (tiny_gqa_model.config.n_kv_heads, 16)

    def test_head_level_shape_mha(self, tiny_mha_model, tiny_tokenizer):
        head = make_head(tiny_mha_model, tiny_tokenizer)
        head.observe(list(range(8, 120)))
        sel = head.select(10, budget=16, level="head")
        assert sel.shape == (tiny_mha_model.config.n_q_heads, 16)

    def test_head_level_shape_mqa(self, tiny_mqa_model, tiny_tokenizer):
        head = make_head(tiny_mqa_model, tiny_tokenizer)
        head.observe(list(range(8, 120)))
        sel = head.select(10, budget=16, level="head")
        assert sel.shape == (1, 16)

    def test_head_level_shape_mla(self, tiny_mla_model, tiny_tokenizer):
        head = make_head(tiny_mla_model, tiny_tokenizer)
        head.observe(list(range(8, 120)))
        sel = head.select(10, budget=16, level="head")
        assert sel.shape == (tiny_mla_model.config.n_q_heads, 16)

    def test_batch_level_shares_one_set(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(8, 120)))
        sel = head.select(10, budget=16, level="batch")
        for row in sel[1:]:
            np.testing.assert_array_equal(row, sel[0])

    def test_budget_capped_by_sequence(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(8, 28)))
        sel = head.select(10, budget=999)
        assert sel.shape[1] == 20

    def test_selection_indices_in_range_and_unique(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(8, 208)))
        sel = head.select(10, budget=32)
        assert sel.min() >= 0 and sel.max() < 200
        for row in sel:
            assert len(np.unique(row)) == row.size

    def test_sink_and_recent_positions_pinned(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer, always_sink=1, always_recent=2)
        head.observe(list(range(8, 208)))
        sel = head.select(10, budget=16)
        for row in sel:
            assert 0 in row  # attention sink
            assert 198 in row and 199 in row  # the two most recent tokens

    def test_unknown_level_raises(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(8, 40)))
        with pytest.raises(ValueError):
            head.select(10, budget=8, level="token")

    def test_selection_finds_planted_evidence(self, tiny_gqa_model, tiny_tokenizer):
        """The induction-role heads must rank the value after a repeated key."""
        rng = np.random.default_rng(5)
        head = make_head(tiny_gqa_model, tiny_tokenizer, noise=0.1)
        key, value = (
            int(t) for t in tiny_tokenizer.random_content_ids(rng, 2)
        )
        filler = [int(t) for t in tiny_tokenizer.random_filler_ids(rng, 100)]
        ids = filler[:50] + [key, value] + filler[50:]
        head.observe(ids)
        sel = head.select(key, budget=8, level="head")
        value_pos = 51
        induction_rows = [
            i for i, role in enumerate(head.roles) if role == "induction"
        ]
        cfg = tiny_gqa_model.config
        group = cfg.group_size
        kv_rows = {r // group for r in induction_rows}
        assert any(value_pos in sel[r] for r in kv_rows)


class TestGroupReduction:
    def test_gqa_group_max(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        head.observe(list(range(8, 72)))
        full = head.attention_weights(9)
        reduced = head.group_reduced_weights(9)
        cfg = tiny_gqa_model.config
        assert reduced.shape == (cfg.n_kv_heads, 64)
        manual = full.reshape(cfg.n_kv_heads, cfg.group_size, -1).max(axis=1)
        np.testing.assert_allclose(reduced, manual)

    def test_mha_no_reduction(self, tiny_mha_model, tiny_tokenizer):
        head = make_head(tiny_mha_model, tiny_tokenizer)
        head.observe(list(range(8, 72)))
        assert head.group_reduced_weights(9).shape[0] == head.n_heads


class TestPolicy:
    def test_policy_requires_positive_budget(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        with pytest.raises(ValueError):
            SpeContextPolicy(head, budget=0)

    def test_policy_full_attention_below_budget(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        policy = SpeContextPolicy(head, budget=64)
        cache = tiny_gqa_model.new_cache()
        policy.begin_generation(np.arange(8, 24), cache)
        policy.pre_step(0, 9, cache)
        assert policy.select(0, None, 16, None) is None

    def test_policy_selects_above_budget(self, tiny_gqa_model, tiny_tokenizer):
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        policy = SpeContextPolicy(head, budget=16)
        cache = tiny_gqa_model.new_cache()
        policy.begin_generation(np.arange(8, 108), cache)
        policy.pre_step(0, 9, cache)
        selection = policy.select(0, None, 100, None)
        assert selection is not None and selection.shape[1] == 16
        assert len(policy.selection_history) == 1

    def test_same_selection_used_for_all_layers(self, tiny_gqa_model, tiny_tokenizer):
        """The paradigm shift: selection is global, not per-layer."""
        head = make_head(tiny_gqa_model, tiny_tokenizer)
        policy = SpeContextPolicy(head, budget=16)
        cache = tiny_gqa_model.new_cache()
        policy.begin_generation(np.arange(8, 108), cache)
        policy.pre_step(0, 9, cache)
        first = policy.select(0, None, 100, None)
        for layer in range(1, 4):
            np.testing.assert_array_equal(first, policy.select(layer, None, 100, None))
