"""Tests for the KV-cache substrate: dense cache, tiered store, slot buffer.

The former standalone ``PagedKVCache`` (Quest's page-metadata layout) was
deleted in the kvcache consolidation — :mod:`repro.retrieval.quest` owns
that layout internally and is covered by the retrieval-policy tests; the
tiered store and slot buffer now live in :mod:`repro.kvcache.pool`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import MemoryTier
from repro.kvcache import (
    GpuSlotBuffer,
    LayerKVCache,
    ModelKVCache,
    TieredKVStore,
)


def _kv(n, heads=2, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((1, heads, n, dim)),
        rng.standard_normal((1, heads, n, dim)),
    )


class TestLayerKVCache:
    def test_append_and_len(self):
        cache = LayerKVCache(1, 2, 4)
        k, v = _kv(5)
        cache.append(k, v)
        assert len(cache) == 5
        np.testing.assert_array_equal(cache.keys, k)

    def test_append_grows_capacity(self):
        cache = LayerKVCache(1, 2, 4, capacity=2)
        for i in range(10):
            k, v = _kv(3, seed=i)
            cache.append(k, v)
        assert len(cache) == 30

    def test_append_shape_mismatch_rejected(self):
        cache = LayerKVCache(1, 2, 4)
        with pytest.raises(ValueError):
            cache.append(np.zeros((1, 3, 2, 4)), np.zeros((1, 3, 2, 4)))

    def test_gather_1d(self):
        cache = LayerKVCache(1, 2, 4)
        k, v = _kv(8)
        cache.append(k, v)
        ks, vs = cache.gather(np.array([1, 5]))
        np.testing.assert_array_equal(ks[0, :, 0], k[0, :, 1])
        np.testing.assert_array_equal(vs[0, :, 1], v[0, :, 5])

    def test_gather_head_level(self):
        cache = LayerKVCache(1, 2, 4)
        k, v = _kv(8)
        cache.append(k, v)
        idx = np.array([[0, 1], [6, 7]])
        ks, _ = cache.gather(idx)
        np.testing.assert_array_equal(ks[0, 0, 0], k[0, 0, 0])
        np.testing.assert_array_equal(ks[0, 1, 1], k[0, 1, 7])

    def test_gather_out_of_range(self):
        cache = LayerKVCache(1, 2, 4)
        k, v = _kv(3)
        cache.append(k, v)
        with pytest.raises(IndexError):
            cache.gather(np.array([3]))

    def test_truncate(self):
        cache = LayerKVCache(1, 2, 4)
        k, v = _kv(6)
        cache.append(k, v)
        cache.truncate(2)
        assert len(cache) == 2

    def test_nbytes(self):
        cache = LayerKVCache(1, 2, 4)
        k, v = _kv(10)
        cache.append(k, v)
        assert cache.nbytes() == 2 * 1 * 2 * 10 * 4 * 2

    @given(st.lists(st.integers(1, 8), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_property_append_preserves_prefix(self, chunks):
        cache = LayerKVCache(1, 1, 2, capacity=1)
        all_k = []
        for i, n in enumerate(chunks):
            rng = np.random.default_rng(i)
            k = rng.standard_normal((1, 1, n, 2))
            cache.append(k, k)
            all_k.append(k)
        expected = np.concatenate(all_k, axis=2)
        np.testing.assert_array_equal(cache.keys, expected)


class TestModelKVCache:
    def test_seq_len_consistent(self):
        cache = ModelKVCache(3, 1, 2, 4)
        k, v = _kv(4)
        for layer in range(3):
            cache[layer].append(k, v)
        assert cache.seq_len == 4
        assert len(cache) == 3

    def test_nbytes_sums_layers(self):
        cache = ModelKVCache(2, 1, 2, 4)
        k, v = _kv(5)
        cache[0].append(k, v)
        cache[1].append(k, v)
        assert cache.nbytes() == 2 * cache[0].nbytes()


class TestTieredKVStore:
    def _store(self, n=16):
        store = TieredKVStore(n_kv_heads=2, head_dim=4)
        rng = np.random.default_rng(0)
        store.append(
            rng.standard_normal((2, n, 4)),
            rng.standard_normal((2, n, 4)),
            MemoryTier.CPU,
        )
        return store

    def test_fetch_charges_only_missing(self):
        store = self._store()
        moved1 = store.fetch_to_gpu(np.array([0, 1, 2]))
        assert moved1 == 3 * store.bytes_per_token
        moved2 = store.fetch_to_gpu(np.array([1, 2, 3]))
        assert moved2 == 1 * store.bytes_per_token

    def test_gather_requires_residency(self):
        store = self._store()
        with pytest.raises(RuntimeError):
            store.gather(np.array([0]))
        store.fetch_to_gpu(np.array([0]))
        k, v = store.gather(np.array([0]))
        assert k.shape == (2, 1, 4)

    def test_evict_frees_gpu(self):
        store = self._store()
        store.fetch_to_gpu(np.array([0, 1]))
        freed = store.evict_from_gpu(np.array([0]))
        assert freed == store.bytes_per_token
        assert store.gpu_resident == frozenset({1})

    def test_append_on_gpu_no_traffic(self):
        store = TieredKVStore(2, 4)
        store.append(np.zeros((2, 3, 4)), np.zeros((2, 3, 4)), MemoryTier.GPU)
        assert store.ledger.total_bytes == 0
        assert store.gpu_resident == frozenset({0, 1, 2})

    def test_append_on_cpu_charges_writeback(self):
        store = TieredKVStore(2, 4)
        store.append(np.zeros((2, 3, 4)), np.zeros((2, 3, 4)), MemoryTier.CPU)
        assert store.ledger.d2h_bytes == 3 * store.bytes_per_token

    def test_evict_all(self):
        store = self._store()
        store.fetch_to_gpu(np.arange(8))
        freed = store.evict_all()
        assert freed == 8 * store.bytes_per_token
        assert store.gpu_bytes() == 0

    def test_fetch_out_of_range(self):
        with pytest.raises(IndexError):
            self._store(4).fetch_to_gpu(np.array([10]))

    @given(st.lists(
        st.sets(st.integers(0, 15), min_size=1, max_size=10),
        min_size=1, max_size=8,
    ))
    @settings(max_examples=30, deadline=None)
    def test_property_traffic_counts_unique_misses(self, selections):
        """Total h2d bytes == unique first-touches, under fetch-only workload."""
        store = self._store(16)
        seen = set()
        for sel in selections:
            store.fetch_to_gpu(np.array(sorted(sel)))
            seen |= sel
        assert store.ledger.h2d_bytes == len(seen) * store.bytes_per_token


class TestGpuSlotBuffer:
    def _fetch(self, token):
        k = np.full((2, 4), float(token))
        return k, -k

    def test_update_loads_and_evicts(self):
        buf = GpuSlotBuffer(budget=4, n_kv_heads=2, head_dim=4)
        loaded, evicted = buf.update(np.array([1, 2, 3]), self._fetch)
        assert (loaded, evicted) == (3, 0)
        loaded, evicted = buf.update(np.array([2, 3, 4]), self._fetch)
        assert (loaded, evicted) == (1, 1)
        assert buf.resident_tokens == frozenset({2, 3, 4})

    def test_gather_returns_payload(self):
        buf = GpuSlotBuffer(4, 2, 4)
        buf.update(np.array([7, 9]), self._fetch)
        k, v = buf.gather(np.array([9, 7]))
        assert k.shape == (2, 2, 4)
        np.testing.assert_array_equal(k[:, 0, :], np.full((2, 4), 9.0))
        np.testing.assert_array_equal(v[:, 1, :], np.full((2, 4), -7.0))

    def test_gather_missing_token(self):
        buf = GpuSlotBuffer(2, 2, 4)
        buf.update(np.array([0]), self._fetch)
        with pytest.raises(KeyError):
            buf.gather(np.array([5]))

    def test_over_budget_rejected(self):
        buf = GpuSlotBuffer(2, 2, 4)
        with pytest.raises(ValueError):
            buf.update(np.array([0, 1, 2]), self._fetch)

    @given(
        st.lists(
            st.sets(st.integers(0, 30), min_size=1, max_size=8),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_residency_equals_selection(self, selections):
        """Invariant from DESIGN.md: after update, residents == S_now."""
        buf = GpuSlotBuffer(budget=8, n_kv_heads=1, head_dim=2)
        def fetch(t):
            return np.full((1, 2), float(t)), np.full((1, 2), float(t))

        for sel in selections:
            buf.update(np.array(sorted(sel)), fetch)
            assert buf.resident_tokens == frozenset(sel)
            k, _ = buf.gather(np.array(sorted(sel)))
            np.testing.assert_array_equal(
                k[0, :, 0], np.array(sorted(sel), dtype=float)
            )

    @given(
        st.sets(st.integers(0, 40), min_size=4, max_size=8),
        st.sets(st.integers(0, 40), min_size=4, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_fixed_budget_symmetric_diff(self, s_last, s_now):
        """|S_last| == |S_now| implies loads == evictions (Sec. 5.4)."""
        size = min(len(s_last), len(s_now))
        s_last = set(sorted(s_last)[:size])
        s_now = set(sorted(s_now)[:size])
        buf = GpuSlotBuffer(budget=8, n_kv_heads=1, head_dim=2)
        def fetch(t):
            return np.zeros((1, 2)), np.zeros((1, 2))

        buf.update(np.array(sorted(s_last)), fetch)
        loaded, evicted = buf.update(np.array(sorted(s_now)), fetch)
        assert loaded == len(s_now - s_last)
        assert evicted == len(s_last - s_now)
        assert loaded == evicted
