"""Engine executor tests: protocol, bit-identity, failover, fault paths.

The executor contract under test:

- the in-process and multiprocess executors produce bit-identical
  per-request token streams, finish reasons and placements for the same
  submission sequence, at any worker count — any difference is a
  pipe/pickle bug by construction;
- killing a worker mid-trace resubmits its in-flight requests to
  survivors and the merged client streams stay bit-identical to a run
  that never saw the death (exactly-once delivery via replayed-prefix
  suppression);
- typed validation errors raised worker-side ship back across the pipe
  and leave the executor retryable (router cursor restored);
- requests that cannot survive shipment or failover (generator objects,
  prebuilt policy objects) are rejected identically by both executors.
"""

from __future__ import annotations

import multiprocessing as mp
import threading

import numpy as np
import pytest

from repro.api import (
    ClusterConfig,
    EngineConfig,
    GenerationRequest,
    SamplingParams,
)
from repro.api.errors import (
    EngineUnavailableError,
    RequestValidationError,
    UnknownPolicyError,
)
from repro.serving import ClusterFrontend
from repro.serving.engine import (
    InProcessExecutor,
    MultiprocExecutor,
    StepResult,
    WorkerCore,
    WorkerSnapshot,
    make_executor,
    serve_connection,
)
from repro.serving.server import SpeContextServer

ALL_NAMES = (
    "specontext", "quest", "h2o", "shadowkv", "clusterkv",
    "streaming", "sliding", "full",
)

EXECUTORS = (InProcessExecutor, MultiprocExecutor)


def engine_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=64,
        bos_id=tokenizer.bos_id,
        max_concurrency=8,
        seed=0,
        block_size=8,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def cluster_config(n_workers: int, **overrides) -> ClusterConfig:
    defaults = dict(n_replicas=n_workers, router="round_robin")
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def mixed_policy_requests(
    tokenizer, n: int = 8, max_new: int = 4
) -> list[GenerationRequest]:
    """One request per KV policy, filler prompts with a shared prefix."""
    prefix_rng = np.random.default_rng(11)
    prefix = [int(t) for t in tokenizer.random_filler_ids(prefix_rng, 16)]
    requests = []
    for i in range(n):
        rng = np.random.default_rng(500 + i)
        suffix = [int(t) for t in tokenizer.random_filler_ids(rng, 10 + i)]
        requests.append(GenerationRequest(
            np.array([tokenizer.bos_id] + prefix + suffix),
            sampling=SamplingParams(max_new_tokens=max_new),
            policy=ALL_NAMES[i % len(ALL_NAMES)],
            budget=48,
        ))
    return requests


def clone(request: GenerationRequest) -> GenerationRequest:
    return GenerationRequest(
        request.prompt_ids.copy(),
        sampling=request.sampling,
        policy=request.policy,
        budget=request.budget,
        priority=request.priority,
    )


def run_trace(executor, requests, kill=None):
    """Submit everything, step to empty; optionally kill a worker.

    ``kill`` is ``(after_step, worker_index)``. Returns per-request
    ``(streams, finish_reasons, placements)`` keyed by global id, where
    streams carry the session-relative ``(step, token_id)`` pairs the
    client observed.
    """
    placements = {}
    for request in requests:
        gid = executor.add_request(clone(request))
        placements[gid] = executor.worker_of(gid)
    streams: dict[int, list] = {gid: [] for gid in placements}
    reasons: dict[int, str] = {}
    steps = 0
    while executor.has_unfinished:
        if kill is not None and steps == kill[0]:
            executor.kill_worker(kill[1])
        finished = executor.step()
        steps += 1
        for event in executor.pop_stream_events():
            streams[event.request_id].append((event.step, event.token_id))
        for output in finished:
            reasons[output.request_id] = output.finish_reason
    return streams, reasons, placements


# ---- worker core (no pipes) --------------------------------------------------


class TestWorkerCore:
    def make_core(self, tiny_gqa_model, tiny_tokenizer) -> WorkerCore:
        return WorkerCore(
            SpeContextServer(tiny_gqa_model, engine_config(tiny_tokenizer))
        )

    def test_ops_roundtrip(self, tiny_gqa_model, tiny_tokenizer):
        core = self.make_core(tiny_gqa_model, tiny_tokenizer)
        request = mixed_policy_requests(tiny_tokenizer, n=1)[0]
        lid = core.handle("submit", (request,))
        assert lid == 0
        reserved, depth, match = core.handle("probe", (request.prompt_ids,))
        assert reserved == request.prompt_len + 4
        assert depth == 1
        assert match == 0
        assert core.handle("ping", ()) == "pong"
        result = core.handle("step", ())
        assert isinstance(result, StepResult)
        assert result.step_tokens > 0  # prefill + first decode charged
        drained = core.handle("drain", ())
        assert drained.has_unfinished is False
        tokens = [e.token_id for r in (result, drained) for e in r.stream_events]
        assert len(tokens) == 4
        snapshot = core.handle("stats", ())
        assert isinstance(snapshot, WorkerSnapshot)
        assert snapshot.n_active == 0 and snapshot.reserved_tokens == 0
        assert len(snapshot.meter.finished) == 1

    def test_unknown_op_and_abort(self, tiny_gqa_model, tiny_tokenizer):
        core = self.make_core(tiny_gqa_model, tiny_tokenizer)
        with pytest.raises(ValueError, match="unknown worker op"):
            core.handle("frobnicate", ())
        assert core.handle("abort", (99,)) is False
        lid = core.handle(
            "submit", (mixed_policy_requests(tiny_tokenizer, n=1)[0],)
        )
        assert core.handle("abort", (lid,)) is True
        assert core.handle("step", ()).has_unfinished is False


# ---- pipe protocol (serve_connection in a thread) ----------------------------


class TestServeConnection:
    @pytest.fixture()
    def pipe_worker(self, tiny_gqa_model, tiny_tokenizer):
        core = WorkerCore(
            SpeContextServer(tiny_gqa_model, engine_config(tiny_tokenizer))
        )
        parent, child = mp.Pipe()
        thread = threading.Thread(
            target=serve_connection, args=(core, child), daemon=True
        )
        thread.start()
        yield parent
        if not parent.closed:
            try:
                parent.send(("shutdown", ()))
                parent.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            parent.close()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def call(self, conn, op, *args):
        conn.send((op, args))
        status, payload = conn.recv()
        if status == "err":
            raise payload
        return payload

    def test_full_request_lifecycle(self, pipe_worker, tiny_tokenizer):
        request = mixed_policy_requests(tiny_tokenizer, n=1)[0]
        lid = self.call(pipe_worker, "submit", request)
        assert lid == 0
        reserved, depth, match = self.call(
            pipe_worker, "probe", request.prompt_ids
        )
        assert (reserved, depth, match) == (request.prompt_len + 4, 1, 0)
        tokens = []
        while True:
            result = self.call(pipe_worker, "step")
            tokens.extend(e.token_id for e in result.stream_events)
            if not result.has_unfinished:
                break
        assert len(tokens) == 4
        snapshot = self.call(pipe_worker, "stats")
        assert len(snapshot.meter.finished) == 1

    def test_errors_ship_back_and_worker_survives(
        self, pipe_worker, tiny_tokenizer
    ):
        request = clone(mixed_policy_requests(tiny_tokenizer, n=1)[0])
        request.policy = "not-a-policy"
        with pytest.raises(UnknownPolicyError, match="unknown policy"):
            self.call(pipe_worker, "submit", request)
        with pytest.raises(ValueError, match="unknown worker op"):
            self.call(pipe_worker, "no_such_op")
        # The loop survived both errors and still answers.
        assert self.call(pipe_worker, "ping") == "pong"
        assert self.call(pipe_worker, "abort", 123) is False

    def test_shutdown_acknowledges(self, pipe_worker):
        pipe_worker.send(("shutdown", ()))
        assert pipe_worker.recv() == ("ok", None)
        pipe_worker.close()


# ---- executor bit-identity ---------------------------------------------------


class TestExecutorBitIdentity:
    @pytest.fixture(scope="class")
    def reference(self, tiny_gqa_model, tiny_tokenizer):
        """Solo ground truth: every request on a one-worker executor."""
        requests = mixed_policy_requests(tiny_tokenizer)
        with InProcessExecutor(
            tiny_gqa_model, engine_config(tiny_tokenizer), cluster_config(1)
        ) as executor:
            streams, reasons, _ = run_trace(executor, requests)
        return requests, streams, reasons

    @pytest.mark.parametrize("n_workers", (1, 2, 4))
    def test_executors_agree_at_every_width(
        self, tiny_gqa_model, tiny_tokenizer, reference, n_workers
    ):
        requests, ref_streams, ref_reasons = reference
        config = engine_config(tiny_tokenizer)
        runs = {}
        for kind in EXECUTORS:
            with kind(
                tiny_gqa_model, config, cluster_config(n_workers)
            ) as executor:
                assert executor.n_workers == n_workers
                runs[kind.kind] = run_trace(executor, requests)
        inproc, multiproc = runs["inproc"], runs["multiproc"]
        # Streams, finish reasons and placements: multiproc == inproc.
        assert multiproc == inproc
        # Placement never changes tokens: both equal the solo reference.
        assert inproc[0] == ref_streams
        assert inproc[1] == ref_reasons
        if n_workers > 1:
            assert len(set(inproc[2].values())) > 1  # actually spread out

    @pytest.mark.parametrize("router", ("least_loaded", "prefix_affinity"))
    def test_inproc_executor_matches_cluster_frontend(
        self, tiny_gqa_model, tiny_tokenizer, router
    ):
        """Drop-in equivalence with the cluster frontend, per router."""
        requests = mixed_policy_requests(tiny_tokenizer, n=6)
        config = engine_config(tiny_tokenizer)
        cluster = cluster_config(2, router=router, stickiness_tokens=8)
        frontend = ClusterFrontend(tiny_gqa_model, config, cluster)
        for request in requests:
            frontend.add_request(clone(request))
        frontend.run()
        frontend_streams: dict[int, list] = {}
        for event in frontend.pop_stream_events():
            frontend_streams.setdefault(event.request_id, []).append(
                (event.step, event.token_id)
            )
        with InProcessExecutor(tiny_gqa_model, config, cluster) as executor:
            streams, _, _ = run_trace(executor, requests)
        assert streams == frontend_streams
        assert list(executor.routing.routed) == list(frontend.routing.routed)
        assert executor.routing.affinity_hits == frontend.routing.affinity_hits


# ---- failover ----------------------------------------------------------------


class TestExecutorFailover:
    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_killed_worker_streams_stay_exactly_once(
        self, tiny_gqa_model, tiny_tokenizer, kind
    ):
        """Death mid-trace: client streams bit-match the no-death run."""
        requests = mixed_policy_requests(tiny_tokenizer)
        config = engine_config(tiny_tokenizer)
        with kind(
            tiny_gqa_model, config, cluster_config(3)
        ) as executor:
            baseline = run_trace(executor, requests)
        with kind(
            tiny_gqa_model, config, cluster_config(3)
        ) as executor:
            streams, reasons, _ = run_trace(executor, requests, kill=(2, 1))
            assert executor.degraded
            assert executor.n_alive == 2
            health = executor.health()
            assert [w.alive for w in health] == [True, False, True]
            assert all(w.inflight == 0 for w in health)
            # The dead worker's requests were re-placed on survivors.
            assert executor.resubmissions
            assert all(w != 1 for _, w in executor.resubmissions)
        assert streams == baseline[0]
        assert reasons == baseline[1]

    def test_real_process_death_is_detected_and_recovered(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """An actual SIGTERM'd child is quarantined on the next wave."""
        requests = mixed_policy_requests(tiny_tokenizer)
        config = engine_config(tiny_tokenizer)
        with MultiprocExecutor(
            tiny_gqa_model, config, cluster_config(3)
        ) as executor:
            baseline = run_trace(executor, requests)
        with MultiprocExecutor(
            tiny_gqa_model, config, cluster_config(3, heartbeat_s=30.0)
        ) as executor:
            for request in requests:
                executor.add_request(clone(request))
            executor.step()
            victim = executor._handles[2]
            victim._proc.terminate()
            victim._proc.join(timeout=10)
            streams: dict[int, list] = {}
            reasons = {}
            while executor.has_unfinished:
                finished = executor.step()
                for event in executor.pop_stream_events():
                    streams.setdefault(event.request_id, []).append(
                        (event.step, event.token_id)
                    )
                for output in finished:
                    reasons[output.request_id] = output.finish_reason
            assert executor.degraded
            assert executor.health()[2].exitcode is not None
            assert executor.resubmissions
        # pop_stream_events buffers across steps, so the dict holds the
        # complete client streams despite the mid-run collection start.
        assert streams == baseline[0]
        assert reasons == baseline[1]

    def test_submission_routes_around_dead_workers(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        requests = mixed_policy_requests(tiny_tokenizer, n=4)
        with InProcessExecutor(
            tiny_gqa_model,
            engine_config(tiny_tokenizer),
            cluster_config(3),
        ) as executor:
            assert executor.kill_worker(0) == []  # idle: no orphans
            gids = [executor.add_request(clone(r)) for r in requests]
            for gid in gids:
                assert executor.worker_of(gid) != 0
            outputs = executor.run()
            assert [o.request_id for o in outputs] == gids
            assert executor.has_unfinished is False

    def test_all_workers_dead_is_unavailable(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        request = mixed_policy_requests(tiny_tokenizer, n=1)[0]
        with InProcessExecutor(
            tiny_gqa_model, engine_config(tiny_tokenizer), cluster_config(2)
        ) as executor:
            executor.add_request(clone(request))
            executor.kill_worker(1)
            # Killing the last worker cannot recover its in-flight work.
            with pytest.raises(EngineUnavailableError, match="all workers"):
                executor.kill_worker(0)
            with pytest.raises(EngineUnavailableError, match="no live"):
                executor.add_request(clone(request))

    def test_abort_and_drain(self, tiny_gqa_model, tiny_tokenizer):
        requests = mixed_policy_requests(tiny_tokenizer, n=3)
        with InProcessExecutor(
            tiny_gqa_model, engine_config(tiny_tokenizer), cluster_config(2)
        ) as executor:
            gids = [executor.add_request(clone(r)) for r in requests]
            assert executor.abort(gids[1]) is True
            assert executor.abort(gids[1]) is False  # already gone
            assert executor.abort(999) is False  # unknown id
            outputs = executor.drain()
            assert [o.request_id for o in outputs] == [gids[0], gids[2]]
            with pytest.raises(EngineUnavailableError, match="draining"):
                executor.add_request(clone(requests[0]))


# ---- validation and portability ----------------------------------------------


class TestExecutorValidation:
    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_worker_side_errors_forward_and_leave_cursor_intact(
        self, tiny_gqa_model, tiny_tokenizer, kind
    ):
        requests = mixed_policy_requests(tiny_tokenizer, n=2)
        config = engine_config(tiny_tokenizer)
        with kind(tiny_gqa_model, config, cluster_config(2)) as executor:
            bad = clone(requests[0])
            bad.policy = "not-a-policy"
            with pytest.raises(UnknownPolicyError, match="unknown policy"):
                executor.add_request(bad)
            hot = clone(requests[0])
            hot.sampling = SamplingParams(
                max_new_tokens=4, temperature=0.7, seed=None
            )
            with pytest.raises(ValueError, match="requires a seed"):
                executor.add_request(hot)
            placements = [
                executor.worker_of(executor.add_request(clone(r)))
                for r in requests
            ]
        with kind(tiny_gqa_model, config, cluster_config(2)) as executor:
            clean = [
                executor.worker_of(executor.add_request(clone(r)))
                for r in requests
            ]
        # Rejections restored the router cursor: placement is unchanged
        # versus a run that never saw the bad submissions.
        assert placements == clean

    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_non_portable_requests_rejected(
        self, tiny_gqa_model, tiny_tokenizer, kind
    ):
        base = mixed_policy_requests(tiny_tokenizer, n=1)[0]
        with kind(
            tiny_gqa_model,
            engine_config(tiny_tokenizer),
            cluster_config(1),
        ) as executor:
            with_rng = clone(base)
            with_rng.rng = np.random.default_rng(3)
            with pytest.raises(RequestValidationError, match="seed"):
                executor.add_request(with_rng)
            prebuilt = clone(base)
            prebuilt.policy = object()  # stands in for a policy instance
            with pytest.raises(RequestValidationError, match="registry name"):
                executor.add_request(prebuilt)

    def test_make_executor_dispatch(self, tiny_gqa_model, tiny_tokenizer):
        config = engine_config(tiny_tokenizer)
        with make_executor(
            tiny_gqa_model, config, cluster_config(1, executor="inproc")
        ) as executor:
            assert isinstance(executor, InProcessExecutor)
        with pytest.raises(ValueError, match="must be 'inproc'"):
            cluster_config(1, executor="warp")  # rejected at config time


# ---- merged stats ------------------------------------------------------------


class TestExecutorStats:
    @pytest.mark.parametrize("kind", EXECUTORS)
    def test_merged_meter_and_routing(
        self, tiny_gqa_model, tiny_tokenizer, kind
    ):
        requests = mixed_policy_requests(tiny_tokenizer, n=6)
        with kind(
            tiny_gqa_model, engine_config(tiny_tokenizer), cluster_config(3)
        ) as executor:
            streams, reasons, placements = run_trace(executor, requests)
            meter = executor.stats()
            assert len(meter.finished) == 6
            assert meter.generated_tokens == sum(
                len(s) for s in streams.values()
            )
            assert list(executor.routing.routed) == [2, 2, 2]
            assert executor.outputs == sorted(
                executor.outputs, key=lambda o: o.request_id
            )
            assert len(executor.outputs) == 6
            assert executor.clock > 0
