"""Tests for repro.utils: rng streams, tables, units."""

import numpy as np
import pytest

from repro.utils import (
    GB,
    MB,
    RngFactory,
    bytes_to_gb,
    format_series,
    format_table,
    human_bytes,
    seeded_rng,
)


class TestRng:
    def test_same_seed_same_stream(self):
        a = seeded_rng(42).standard_normal(8)
        b = seeded_rng(42).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_string_seeds_are_stable(self):
        a = seeded_rng("workload").integers(0, 1000, 16)
        b = seeded_rng("workload").integers(0, 1000, 16)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        factory = RngFactory(7)
        a = factory.stream("a").standard_normal(32)
        b = factory.stream("b").standard_normal(32)
        assert not np.allclose(a, b)

    def test_factory_reproducible(self):
        x = RngFactory(3).stream("model").standard_normal(4)
        y = RngFactory(3).stream("model").standard_normal(4)
        np.testing.assert_array_equal(x, y)

    def test_child_namespacing(self):
        parent = RngFactory(11)
        c1 = parent.child("exp1").stream("data").standard_normal(4)
        c2 = parent.child("exp2").stream("data").standard_normal(4)
        assert not np.allclose(c1, c2)

    def test_master_seed_changes_streams(self):
        a = RngFactory(1).stream("s").standard_normal(4)
        b = RngFactory(2).stream("s").standard_normal(4)
        assert not np.allclose(a, b)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "val"], [["quest", 1.5], ["ours", 12.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "12.25" in lines[3] or "12.25" in text

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="Table 3")
        assert text.splitlines()[0] == "Table 3"

    def test_format_table_precision(self):
        text = format_table(["x"], [[3.14159]], precision=1)
        assert "3.1" in text
        assert "3.14" not in text

    def test_format_series_has_all_labels(self):
        text = format_series(
            "budget", [512, 1024], {"ours": [1.0, 2.0], "quest": [0.5, 0.6]}
        )
        assert "ours" in text
        assert "quest" in text
        assert "512" in text


class TestUnits:
    def test_constants(self):
        assert GB == 1024 * MB

    def test_bytes_to_gb(self):
        assert bytes_to_gb(2 * GB) == pytest.approx(2.0)

    def test_human_bytes_units(self):
        assert human_bytes(512) == "512 B"
        assert "KiB" in human_bytes(2048)
        assert "MiB" in human_bytes(3 * MB)
        assert "GiB" in human_bytes(5 * GB)
