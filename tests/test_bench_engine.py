"""The engine benchmark harness is part of the tested surface: CI gates
on its throughput-scaling number, so the report schema, the
stream-identity check against the in-process reference and the gate's
exit codes are pinned here."""

from __future__ import annotations

import importlib.util
import json
import pathlib

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "bench_engine.py"
)
_spec = importlib.util.spec_from_file_location("bench_engine", BENCH_PATH)
bench_engine = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_engine)


class TestBenchEngine:
    def run_bench(self, tmp_path, extra=()):
        out = tmp_path / "BENCH_engine.json"
        rc = bench_engine.main([
            "--workers", "1,2", "--requests", "6", "--prompt-len", "24",
            "--max-new-tokens", "4", "--pace-ms", "4.0", "--repeats", "1",
            "--block-size", "8", "--out", str(out), *extra,
        ])
        return rc, out

    def test_report_schema_and_identical_streams(self, tmp_path, capsys):
        rc, out = self.run_bench(tmp_path)
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "engine_scaling"
        assert report["streams_identical"] is True
        assert report["scaling_span"] == [1, 2]
        assert set(report["scaling"]) == {"1", "2"}
        for entry in report["scaling"].values():
            assert entry["generated_tokens"] == 24
            assert entry["wall_s"] > 0
            assert entry["tokens_per_wall_s"] > 0
            assert entry["steps"] > 0
            assert "token_streams" not in entry  # raw streams stay out
        assert report["scaling"]["1"]["throughput_x_vs_min_workers"] == 1.0
        assert report["throughput_scaling"] == (
            report["scaling"]["2"]["throughput_x_vs_min_workers"]
        )
        assert "workers:" in capsys.readouterr().out

    def test_gate_passes_and_fails(self, tmp_path, capsys):
        # The tiny CI workload's measured ratio is timing-noisy, so the
        # pass case pins only the exit-code path, not the ratio itself
        # (the real threshold runs in the benchmark CI job).
        rc, _ = self.run_bench(tmp_path, extra=("--min-scaling", "0.1"))
        assert rc == 0
        capsys.readouterr()
        rc, _ = self.run_bench(tmp_path, extra=("--min-scaling", "1000"))
        assert rc == 1
        assert "below required" in capsys.readouterr().err

    def test_smoke_flag_shrinks_workload(self, tmp_path):
        out = tmp_path / "BENCH_engine.json"
        rc = bench_engine.main([
            "--smoke", "--prompt-len", "24", "--pace-ms", "2.0",
            "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["smoke"] is True
        assert report["workload"]["worker_counts"] == [1, 2]
        assert report["workload"]["requests"] <= 8
        assert report["workload"]["repeats"] == 1
