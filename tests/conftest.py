"""Shared fixtures: tiny constructed models, tokenizers, hardware specs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    AttentionKind,
    SyntheticTokenizer,
    TransformerLM,
    build_recall_model,
    tiny_test_config,
)
from repro.utils import RngFactory


@pytest.fixture(scope="session")
def rng_factory() -> RngFactory:
    return RngFactory(20260612)


@pytest.fixture(scope="session")
def tiny_tokenizer() -> SyntheticTokenizer:
    return SyntheticTokenizer(vocab_size=512)


@pytest.fixture(scope="session")
def tiny_gqa_model(tiny_tokenizer, rng_factory) -> TransformerLM:
    config = tiny_test_config(AttentionKind.GQA)
    weights = build_recall_model(
        config, tiny_tokenizer, rng_factory.stream("gqa-weights")
    )
    return TransformerLM(weights)


@pytest.fixture(scope="session")
def tiny_mha_model(tiny_tokenizer, rng_factory) -> TransformerLM:
    config = tiny_test_config(AttentionKind.MHA)
    weights = build_recall_model(
        config, tiny_tokenizer, rng_factory.stream("mha-weights")
    )
    return TransformerLM(weights)


@pytest.fixture(scope="session")
def tiny_mqa_model(tiny_tokenizer, rng_factory) -> TransformerLM:
    config = tiny_test_config(AttentionKind.MQA)
    weights = build_recall_model(
        config, tiny_tokenizer, rng_factory.stream("mqa-weights")
    )
    return TransformerLM(weights)


@pytest.fixture(scope="session")
def tiny_mla_model(tiny_tokenizer, rng_factory) -> TransformerLM:
    config = tiny_test_config(AttentionKind.MLA)
    weights = build_recall_model(
        config, tiny_tokenizer, rng_factory.stream("mla-weights")
    )
    return TransformerLM(weights)


def make_recall_prompt(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    n_pairs: int = 8,
    n_filler: int = 300,
    query_pair: int = 0,
) -> tuple[np.ndarray, int, int]:
    """Context with key/value pairs scattered in filler, plus a query.

    Returns (prompt_ids, expected_value_id, value_position_in_prompt).
    """
    ents = tokenizer.random_content_ids(rng, 2 * n_pairs)
    keys = [int(t) for t in ents[:n_pairs]]
    vals = [int(t) for t in ents[n_pairs:]]
    filler = [int(t) for t in tokenizer.random_filler_ids(rng, n_filler)]
    insert_at = sorted(rng.choice(n_filler, size=n_pairs, replace=False).tolist())

    ids = [tokenizer.bos_id]
    value_pos = {}
    for p in range(n_filler):
        ids.append(filler[p])
        if p in insert_at:
            i = insert_at.index(p)
            ids.append(keys[i])
            ids.append(vals[i])
            value_pos[i] = len(ids) - 1
    ids.extend([tokenizer.question_id, keys[query_pair]])
    return np.array(ids), vals[query_pair], value_pos[query_pair]
