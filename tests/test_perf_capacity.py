"""Tests for batch-capacity search."""

from __future__ import annotations

import pytest

from repro.hardware.spec import CLOUD_A800
from repro.models.config import LLAMA_LIKE_8B
from repro.perf.capacity import best_batch, max_fitting_batch
from repro.perf.engines import FLASHINFER, HF_EAGER, QUEST, SPECONTEXT
from repro.perf.simulate import PerfSimulator


@pytest.fixture(scope="module")
def sim():
    return PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, budget=2048)


class TestMaxFittingBatch:
    def test_full_attention_capped_by_kv_memory(self, sim):
        cap = max_fitting_batch(sim, FLASHINFER, 2048, 32768)
        assert 4 <= cap <= 16

    def test_sparse_engine_fits_more(self, sim):
        full = max_fitting_batch(sim, FLASHINFER, 2048, 32768)
        ours = max_fitting_batch(sim, SPECONTEXT, 2048, 32768)
        assert ours > full

    def test_eager_cannot_fit_long_prompts(self, sim):
        assert max_fitting_batch(sim, HF_EAGER, 32768, 2048) == 0

    def test_single_request_engines_capped_at_one(self, sim):
        assert max_fitting_batch(sim, QUEST, 2048, 8192) <= 1


class TestBestBatch:
    def test_best_batch_prefers_larger_batches(self, sim):
        result = best_batch(sim, FLASHINFER, 2048, 8192, n_samples=6)
        assert result.best_batch >= 8
        assert result.tokens_per_second > 0
        assert result.timeline is not None

    def test_ours_best_batch_beats_full_attention(self, sim):
        ours = best_batch(sim, SPECONTEXT, 2048, 16384, n_samples=6)
        full = best_batch(sim, FLASHINFER, 2048, 16384, n_samples=6)
        assert ours.tokens_per_second > full.tokens_per_second

    def test_all_oom_flagged(self, sim):
        result = best_batch(sim, HF_EAGER, 131072, 2048, n_samples=4)
        assert result.all_oom
        assert result.best_batch == 0
        assert result.timeline is None
