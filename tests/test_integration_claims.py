"""Cross-module integration tests asserting the paper's end-to-end claims
on the functional substrate (the accuracy-side counterpart of the
benchmark suite's shape assertions)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.elastic import ElasticTransferTracker
from repro.experiments.common import make_functional_setup
from repro.retrieval.quest import QuestPolicy
from repro.workloads.harness import decode_with_policy, prepare_prompt, sweep_qa
from repro.workloads.judge import judge_generation
from repro.workloads.longbench import generate_examples
from repro.workloads.longwriter import make_writing_example

warnings.filterwarnings("ignore", message="One of the clusters is empty")


@pytest.fixture(scope="module")
def setup():
    return make_functional_setup(seed=12)


@pytest.fixture(scope="module")
def qa_examples(setup):
    rng = np.random.default_rng(120)
    return generate_examples(
        "trivia", setup.tokenizer, rng, 3,
        context_len=640, n_distractors=24, answer_len=4,
    )


class TestChallenge1GlobalSelection:
    def test_ours_retrieves_once_per_step_not_per_layer(self, setup, qa_examples):
        """SpeContext's selection count is layer-independent (pre-pass),
        while baselines re-retrieve in every layer."""
        example = qa_examples[0]
        prepared = prepare_prompt(setup.model, example.prompt_ids)

        ours = setup.bench.policy("Ours", 64)
        decode_with_policy(setup.model, prepared, ours, 4)
        # One retrieval per decode step.
        assert len(ours.selection_history) <= 4

        quest = QuestPolicy(setup.model, 64)
        out = decode_with_policy(setup.model, prepared, quest, 4)
        # Quest selected in every layer of every step.
        n_layers = setup.config.n_layers
        assert all(len(sels) == n_layers for sels in out.selections)


class TestChallenge2RetainedGeneration:
    def test_baseline_sparsity_vanishes_in_reasoning(self, setup):
        """With a tiny prompt and long generation, a retained-KV baseline
        attends over everything (its selections are never triggered),
        while Ours keeps selecting."""
        rng = np.random.default_rng(121)
        example = make_writing_example(
            setup.tokenizer, rng, n_sections=6, section_len=8, prompt_len=96
        )
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        budget = 128  # larger than the 96-token prompt

        quest = setup.bench.policy("Quest", budget)
        q_out = decode_with_policy(
            setup.model, prepared, quest, example.max_new_tokens, example.stop_ids
        )
        assert all(not sels for sels in q_out.selections)  # full attention

        ours = setup.bench.policy("Ours", budget)
        decode_with_policy(
            setup.model, prepared, ours, example.max_new_tokens, example.stop_ids
        )
        assert ours.selection_history  # selection over prompt + generated

    def test_baseline_output_budget_invariant_in_reasoning(self, setup):
        rng = np.random.default_rng(122)
        example = make_writing_example(
            setup.tokenizer, rng, n_sections=6, section_len=8, prompt_len=96
        )
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        outputs = []
        for budget in (128, 256, 512):
            policy = setup.bench.policy("ShadowKV", budget)
            out = decode_with_policy(
                setup.model, prepared, policy,
                example.max_new_tokens, example.stop_ids,
            )
            outputs.append(tuple(out.token_ids))
        assert len(set(outputs)) == 1  # the Sec. 7.2.2 observation


class TestAccuracyBudgetCurve:
    def test_ours_rises_with_budget_to_full(self, setup, qa_examples):
        cells = sweep_qa(
            setup.model, setup.bench, qa_examples, ["Full", "Ours"],
            [48, 128, 512],
        )
        full = cells[("Full", 512)]
        assert cells[("Ours", 48)] <= cells[("Ours", 512)]
        assert cells[("Ours", 512)] >= 0.9 * full

    def test_head_level_beats_batch_level(self, setup, qa_examples):
        cells = sweep_qa(
            setup.model, setup.bench, qa_examples,
            ["Ours", "Ours(batch)"], [64, 128],
        )
        head_mean = np.mean([cells[("Ours", b)] for b in (64, 128)])
        batch_mean = np.mean([cells[("Ours(batch)", b)] for b in (64, 128)])
        assert head_mean >= batch_mean


class TestElasticEquivalence:
    def test_elastic_loading_is_accuracy_neutral(self, setup):
        """C2 changes *when bytes move*, never what is attended: overlap
        statistics differ, generated tokens do not (verified in
        test_core_engine too; here on a writing task)."""
        rng = np.random.default_rng(123)
        example = make_writing_example(
            setup.tokenizer, rng, n_sections=5, section_len=8, prompt_len=120
        )
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        policy = setup.bench.policy("Ours", 96)
        out = decode_with_policy(
            setup.model, prepared, policy, example.max_new_tokens, example.stop_ids
        )
        elastic = ElasticTransferTracker(bytes_per_token=1)
        naive = ElasticTransferTracker(bytes_per_token=1, elastic=False)
        for selection in policy.selection_history:
            elastic.observe(selection)
            naive.observe(selection)
        assert elastic.total_bytes <= naive.total_bytes
        # And the generation itself is valid prose for the judge.
        score = judge_generation(out.token_ids, example)
        assert score.average > 0.0
