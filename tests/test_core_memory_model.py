"""Tests for the theoretical memory model and Algorithm 1 (paper Sec. 6.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory_model import KV_COEFF, RUNTIME_OVERHEAD, MemoryModel
from repro.hardware.spec import CLOUD_A800, EDGE_RTX4060_4GB, HardwareSpec
from repro.models.config import EDGE_LIKE_1B, LLAMA_LIKE_8B
from repro.utils.units import GB


def model(spec=CLOUD_A800, requests=1, budget=2048, config=LLAMA_LIKE_8B):
    return MemoryModel(config, dlm_bytes=120 * 10**6, spec=spec,
                       requests=requests, budget=budget)


class TestEquations:
    def test_requests_must_be_positive(self):
        with pytest.raises(ValueError):
            model(requests=0)

    def test_m_all_matches_eq6(self):
        mm = model(requests=2)
        cfg = LLAMA_LIKE_8B
        seq = 4096
        expected_weights = RUNTIME_OVERHEAD * (cfg.parameter_bytes() + 120e6)
        expected_kv = (
            KV_COEFF * 2 * (cfg.n_layers + 1 + cfg.group_size)
            * seq * cfg.n_kv_heads * cfg.head_dim
        )
        breakdown = mm.m_all(seq)
        assert breakdown.weights == pytest.approx(expected_weights)
        assert breakdown.kv_gpu == pytest.approx(expected_kv)

    def test_m_part_all_layers_equals_m_all(self):
        mm = model()
        seq = 8192
        assert mm.m_part(seq, LLAMA_LIKE_8B.n_layers).total == pytest.approx(
            mm.m_all(seq).total
        )

    def test_m_part_rejects_invalid_layer_count(self):
        mm = model()
        with pytest.raises(ValueError):
            mm.m_part(1024, LLAMA_LIKE_8B.n_layers + 1)
        with pytest.raises(ValueError):
            mm.m_part(1024, -1)

    def test_offloading_reduces_gpu_footprint(self):
        mm = model()
        seq = 65536
        full = mm.m_part(seq, LLAMA_LIKE_8B.n_layers).total
        half = mm.m_part(seq, LLAMA_LIKE_8B.n_layers // 2).total
        none = mm.m_part(seq, 0).total
        assert full > half > none


class TestPlacement:
    def test_max_layers_decreases_with_length(self):
        mm = model(requests=4)
        layers = [mm.max_layers_on_gpu(s) for s in (4096, 32768, 131072)]
        assert layers == sorted(layers, reverse=True)

    def test_short_context_fits_everything(self):
        mm = model()
        assert mm.max_layers_on_gpu(1024) == LLAMA_LIKE_8B.n_layers
        assert mm.fits_all_on_gpu(1024)

    def test_oom_returns_minus_one(self):
        tiny = HardwareSpec(
            name="tiny", gpu_memory_bytes=1 * GB, cpu_memory_bytes=64 * GB,
            gpu_flops=1e12, gpu_bandwidth=1e11, pcie_bandwidth=1e9,
        )
        mm = model(spec=tiny)
        assert mm.max_layers_on_gpu(8192) == -1

    def test_edge_model_fits_on_capped_gpu_with_offload(self):
        mm = model(spec=EDGE_RTX4060_4GB, config=EDGE_LIKE_1B, budget=2048)
        assert mm.max_layers_on_gpu(32768) >= 0


class TestAlgorithm1:
    def test_threshold_list_length(self):
        thresholds = model().sequence_thresholds()
        assert len(thresholds) == LLAMA_LIKE_8B.n_layers + 1

    def test_thresholds_consistent_with_m_part(self):
        """At S_T[i], placing L-i layers on GPU fits; at S_T[i]+1 it doesn't."""
        mm = model(requests=4)
        mem = CLOUD_A800.gpu_memory_bytes
        thresholds = mm.sequence_thresholds()
        layers = LLAMA_LIKE_8B.n_layers
        for i in (0, 1, layers // 2, layers):
            s = thresholds[i]
            if s == 0:
                continue
            assert mm.m_part(s, layers - i).total <= mem
            assert mm.m_part(s + 2, layers - i).total > mem

    @given(
        requests=st.integers(1, 16),
        budget=st.sampled_from([512, 1024, 2048, 4096]),
    )
    @settings(max_examples=25, deadline=None)
    def test_thresholds_monotone_nondecreasing(self, requests, budget):
        """Offloading more layers can only admit longer sequences."""
        mm = model(requests=requests, budget=budget)
        thresholds = mm.sequence_thresholds()
        positive = [t for t in thresholds if t > 0]
        assert positive == sorted(positive)

    @given(
        seq=st.integers(256, 200_000),
        requests=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_chosen_placement_never_exceeds_memory(self, seq, requests):
        """Eq. 8's argmax placement always satisfies its own constraint."""
        mm = model(requests=requests)
        layers = mm.max_layers_on_gpu(seq)
        if layers >= 0:
            assert mm.m_part(seq, layers).total <= CLOUD_A800.gpu_memory_bytes
