"""Tests for the request-level serving API: policy registry round-trips,
continuous-batching server determinism, and engine back-compat."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import EngineConfig, GenerationRequest, SamplingParams
from repro.core.engine import SpeContextEngine
from repro.core.retrieval_head import RetrievalHeadConfig, SpeContextPolicy
from repro.hardware.spec import CLOUD_A800, EDGE_RTX4060_4GB
from repro.models.config import LLAMA_LIKE_8B
from repro.perf.engines import SPECONTEXT
from repro.perf.simulate import PerfSimulator
from repro.retrieval.registry import (
    available_policies,
    make_policy,
    resolve_policy_name,
)
from repro.serving.request import Request
from repro.serving.scheduler import StaticBatchScheduler
from repro.serving.server import SpeContextServer
from tests.conftest import make_recall_prompt

warnings.filterwarnings("ignore", message="One of the clusters is empty")

ALL_NAMES = (
    "specontext", "quest", "h2o", "shadowkv", "clusterkv",
    "streaming", "sliding", "full",
)
K_CACHE_NAMES = ("quest", "h2o", "shadowkv", "clusterkv")
CACHE_AGNOSTIC_NAMES = ("specontext", "streaming", "sliding", "full")


def server_config(tokenizer, **overrides) -> EngineConfig:
    defaults = dict(
        budget=96,
        spec=EDGE_RTX4060_4GB,
        bos_id=tokenizer.bos_id,
        head_config=RetrievalHeadConfig(noise=0.1),
        max_concurrency=4,
        seed=0,
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def mixed_requests(tokenizer, n=8, max_new_tokens=3):
    """One request per policy name, alternating budgets."""
    requests = []
    for i in range(n):
        rng = np.random.default_rng(100 + i)
        prompt, _, _ = make_recall_prompt(tokenizer, rng, n_filler=300)
        requests.append(GenerationRequest(
            prompt,
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
            policy=ALL_NAMES[i % len(ALL_NAMES)],
            budget=64 if i % 2 else 96,
        ))
    return requests


def clone(request: GenerationRequest) -> GenerationRequest:
    return GenerationRequest(
        request.prompt_ids.copy(),
        sampling=request.sampling,
        policy=request.policy,
        budget=request.budget,
    )


class TestRegistry:
    def test_canonical_names_complete(self):
        assert set(available_policies()) == set(ALL_NAMES)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_round_trip_builds_working_policy(
        self, name, tiny_gqa_model, tiny_tokenizer
    ):
        opts = {"bos_id": tiny_tokenizer.bos_id} if name == "specontext" else {}
        policy = make_policy(name, tiny_gqa_model, 64, **opts)
        assert hasattr(policy, "begin_generation")
        assert hasattr(policy, "pre_step")
        assert hasattr(policy, "select")
        rng = np.random.default_rng(0)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=200)
        result = tiny_gqa_model.generate(
            prompt, 2, policy=policy, sparse_from_first_token=True
        )
        assert result.n_generated == 2

    @pytest.mark.parametrize("alias,canonical", [
        ("Ours", "specontext"),
        ("SPECONTEXT", "specontext"),
        ("StreamingLLM", "streaming"),
        ("SlidingWindow", "sliding"),
        ("full-attention", "full"),
        ("Quest", "quest"),
    ])
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_policy_name(alias) == canonical

    def test_unknown_name_raises_with_available_list(self, tiny_gqa_model):
        with pytest.raises(KeyError, match="specontext"):
            make_policy("does-not-exist", tiny_gqa_model, 64)

    @pytest.mark.parametrize("name", K_CACHE_NAMES)
    def test_mla_rejects_k_cache_policies(self, name, tiny_mla_model):
        """The paper's 'None Support' cells, via the registry."""
        with pytest.raises(NotImplementedError):
            make_policy(name, tiny_mla_model, 64)

    @pytest.mark.parametrize("name", CACHE_AGNOSTIC_NAMES)
    def test_mla_supported_policies_construct(
        self, name, tiny_mla_model, tiny_tokenizer
    ):
        opts = {"bos_id": tiny_tokenizer.bos_id} if name == "specontext" else {}
        make_policy(name, tiny_mla_model, 64, **opts)

    def test_specontext_needs_head_or_bos_id(self, tiny_gqa_model):
        with pytest.raises(ValueError, match="bos_id"):
            make_policy("specontext", tiny_gqa_model, 64)

    def test_specontext_accepts_prebuilt_head(self, tiny_gqa_model, tiny_tokenizer):
        first = make_policy(
            "specontext", tiny_gqa_model, 64, bos_id=tiny_tokenizer.bos_id
        )
        second = make_policy("specontext", tiny_gqa_model, 64, head=first.head)
        assert second.head is first.head

    def test_opts_forwarded(self, tiny_gqa_model):
        policy = make_policy("quest", tiny_gqa_model, 64, page_size=8)
        assert policy.page_size == 8


class TestServer:
    def test_eight_concurrent_mixed_policies(self, tiny_gqa_model, tiny_tokenizer):
        """Acceptance: >= 8 concurrent requests, mixed policies/budgets."""
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        requests = mixed_requests(tiny_tokenizer)
        for request in requests:
            server.add_request(request)
        outputs = server.run()
        assert len(outputs) == 8
        assert [o.request_id for o in outputs] == list(range(8))
        for output in outputs:
            assert output.n_generated == 3
            assert output.finish_reason == "length"
            stats = output.stats
            assert stats.budget in (64, 96)
            assert 0.0 <= stats.mean_selection_overlap <= 1.0
        assert len(server.meter.finished) == 8
        assert server.meter.generated_tokens == 24

    def test_batched_matches_single_request_runs(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Acceptance: meter totals == sum of solo runs under the same seed."""
        batched = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        requests = mixed_requests(tiny_tokenizer)
        for request in requests:
            batched.add_request(clone(request))
        batched_outputs = batched.run()

        solo_tokens, solo_generated = [], 0
        for request in requests:
            solo = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
            solo.add_request(clone(request))
            output = solo.run()[0]
            solo_tokens.append(output.token_ids)
            solo_generated += solo.meter.generated_tokens
        assert [o.token_ids for o in batched_outputs] == solo_tokens
        assert batched.meter.generated_tokens == solo_generated

    def test_deterministic_under_fixed_seed(self, tiny_gqa_model, tiny_tokenizer):
        def run_once():
            server = SpeContextServer(
                tiny_gqa_model, server_config(tiny_tokenizer)
            )
            for request in mixed_requests(tiny_tokenizer):
                server.add_request(request)
            return [
                (o.request_id, tuple(o.token_ids), o.stats.bytes_transferred)
                for o in server.run()
            ]

        assert run_once() == run_once()

    def test_temperature_sampling_deterministic_with_seed(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        rng = np.random.default_rng(7)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=200)
        sampling = SamplingParams(max_new_tokens=4, temperature=0.8, seed=3)

        def run_once():
            server = SpeContextServer(
                tiny_gqa_model, server_config(tiny_tokenizer)
            )
            server.add_request(GenerationRequest(prompt, sampling, policy="full"))
            return server.run()[0].token_ids

        assert run_once() == run_once()

    def test_temperature_without_seed_rejected(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        rng = np.random.default_rng(7)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=100)
        with pytest.raises(ValueError, match="temperature"):
            server.add_request(GenerationRequest(
                prompt, SamplingParams(max_new_tokens=2, temperature=0.5)
            ))

    def test_concurrency_cap_respected(self, tiny_gqa_model, tiny_tokenizer):
        server = SpeContextServer(
            tiny_gqa_model, server_config(tiny_tokenizer, max_concurrency=2)
        )
        for request in mixed_requests(tiny_tokenizer, n=5, max_new_tokens=4):
            server.add_request(request)
        server.step()
        assert server.n_active == 2
        assert server.n_waiting == 3
        outputs = server.run()
        assert len(outputs) == 5
        assert len(server.outputs) == 5

    def test_stop_ids_finish_early(self, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(11)
        prompt, expected, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        server.add_request(GenerationRequest(
            prompt,
            SamplingParams(max_new_tokens=8, stop_ids=(expected,)),
            policy="specontext",
        ))
        output = server.run()[0]
        assert output.finish_reason == "stop"
        assert output.token_ids[-1] == expected
        assert output.stats.result.stopped_by_eos

    def test_solves_recall_under_sparsity(self, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(11)
        prompt, expected, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        server.add_request(GenerationRequest(
            prompt, SamplingParams(max_new_tokens=1), policy="specontext"
        ))
        assert server.run()[0].token_ids[0] == expected

    def test_prebuilt_policy_budget_wins_in_stats(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """stats.budget reports the budget that actually governed selection."""
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        prebuilt = make_policy(
            "specontext", tiny_gqa_model, 96, bos_id=tiny_tokenizer.bos_id
        )
        rng = np.random.default_rng(21)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=200)
        server.add_request(GenerationRequest(
            prompt, SamplingParams(max_new_tokens=2), policy=prebuilt, budget=32
        ))
        assert server.run()[0].stats.budget == 96

    def test_failed_submission_leaves_request_retryable(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        rng = np.random.default_rng(22)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=100)
        request = GenerationRequest(
            prompt, SamplingParams(max_new_tokens=2), policy="qest"  # typo
        )
        with pytest.raises(KeyError):
            server.add_request(request)
        assert request.request_id is None  # no id burned
        request.policy = "quest"
        assert server.add_request(request) == 0
        assert server.run()[0].n_generated == 2

    def test_shared_prebuilt_policy_rejected_while_in_flight(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        prebuilt = make_policy(
            "specontext", tiny_gqa_model, 96, bos_id=tiny_tokenizer.bos_id
        )
        rng = np.random.default_rng(24)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=100)
        server.add_request(GenerationRequest(
            prompt, SamplingParams(max_new_tokens=2), policy=prebuilt
        ))
        with pytest.raises(ValueError, match="already bound"):
            server.add_request(GenerationRequest(
                prompt, SamplingParams(max_new_tokens=2), policy=prebuilt
            ))
        server.run()
        # Sequential reuse (previous session drained) is fine.
        server.add_request(GenerationRequest(
            prompt, SamplingParams(max_new_tokens=2), policy=prebuilt
        ))
        assert server.run()[0].n_generated == 2

    def test_clear_history_bounds_bookkeeping(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(tiny_gqa_model, server_config(tiny_tokenizer))
        rng = np.random.default_rng(23)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=100)
        for _ in range(2):
            server.add_request(GenerationRequest(
                prompt, SamplingParams(max_new_tokens=1), policy="full"
            ))
            server.run()
        assert len(server.outputs) == 2
        server.clear_history()
        assert server.outputs == []
        assert len(server.meter.finished) == 0


class TestEngineBackCompat:
    @pytest.fixture
    def engine(self, tiny_gqa_model, tiny_tokenizer):
        return SpeContextEngine(
            tiny_gqa_model,
            tiny_tokenizer.bos_id,
            budget=96,
            spec=EDGE_RTX4060_4GB,
            head_config=RetrievalHeadConfig(noise=0.1),
            rng=np.random.default_rng(0),
        )

    def test_wrapper_matches_direct_model_generate(
        self, engine, tiny_gqa_model, tiny_tokenizer
    ):
        """Seed behaviour: engine tokens == model.generate under sparsity."""
        rng = np.random.default_rng(12)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        stats = engine.generate(prompt, max_new_tokens=4)
        fresh_policy = SpeContextPolicy(engine.head, 96, level="head")
        direct = tiny_gqa_model.generate(
            prompt, 4, policy=fresh_policy, sparse_from_first_token=True
        )
        assert stats.text_token_ids == direct.token_ids

    def test_engine_rejects_request_past_max_position(
        self, engine, tiny_tokenizer
    ):
        """Regression: the one-shot engine path must also reject a
        generation that would decode past the cached RoPE table."""
        rng = np.random.default_rng(14)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=120)
        max_position = engine.model.config.max_position
        with pytest.raises(ValueError, match="max_position"):
            engine.generate(prompt, max_new_tokens=max_position)

    def test_policy_reused_across_calls(self, engine, tiny_tokenizer):
        """The satellite: one policy object serves every generate() call."""
        policy_before = engine.policy
        rng = np.random.default_rng(13)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        first = engine.generate(prompt, max_new_tokens=3)
        assert engine.policy is policy_before
        second = engine.generate(prompt, max_new_tokens=3)
        assert engine.policy is policy_before
        # Explicit reset between requests: histories don't leak across
        # calls (tokens and offload schedule repeat; transfer bytes may
        # wiggle because noise-role head keys are drawn from a stateful
        # rng, exactly as in the pre-refactor engine).
        assert first.text_token_ids == second.text_token_ids
        assert first.bytes_transferred > 0 and second.bytes_transferred > 0
        assert [e.seq_len for e in first.offload_events] == [
            e.seq_len for e in second.offload_events
        ]

    def test_repeat_call_matches_fresh_engine(
        self, engine, tiny_gqa_model, tiny_tokenizer
    ):
        """Stats from a reused engine == stats from a brand-new engine."""
        rng = np.random.default_rng(14)
        prompt_a, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        prompt_b, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        engine.generate(prompt_a, max_new_tokens=3)
        reused = engine.generate(prompt_b, max_new_tokens=3)
        fresh = SpeContextEngine(
            tiny_gqa_model,
            tiny_tokenizer.bos_id,
            budget=96,
            spec=EDGE_RTX4060_4GB,
            head_config=RetrievalHeadConfig(noise=0.1),
            rng=np.random.default_rng(0),
        ).generate(prompt_b, max_new_tokens=3)
        assert reused.text_token_ids == fresh.text_token_ids
        assert len(reused.offload_events) == len(fresh.offload_events)

    def test_engine_accepts_engine_config(self, tiny_gqa_model, tiny_tokenizer):
        config = EngineConfig(
            budget=96,
            spec=EDGE_RTX4060_4GB,
            head_config=RetrievalHeadConfig(noise=0.1),
            max_concurrency=1,
        )
        engine = SpeContextEngine(
            tiny_gqa_model, tiny_tokenizer.bos_id, config=config,
            rng=np.random.default_rng(0),
        )
        assert engine.budget == 96
        rng = np.random.default_rng(15)
        prompt, expected, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        stats = engine.generate(prompt, max_new_tokens=1)
        assert stats.text_token_ids[0] == expected

    def test_engine_rejects_mixed_kwargs_and_config(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        with pytest.raises(ValueError, match="budget"):
            SpeContextEngine(
                tiny_gqa_model,
                tiny_tokenizer.bos_id,
                budget=96,
                config=EngineConfig(spec=EDGE_RTX4060_4GB),
            )

    def test_engine_bos_id_config_contract(self, tiny_gqa_model, tiny_tokenizer):
        """Clashing bos_ids raise; a None config.bos_id is filled in."""
        with pytest.raises(ValueError, match="bos_id"):
            SpeContextEngine(
                tiny_gqa_model,
                0,
                config=EngineConfig(
                    bos_id=tiny_tokenizer.bos_id, max_concurrency=1
                ),
            )
        engine = SpeContextEngine(
            tiny_gqa_model,
            tiny_tokenizer.bos_id,
            config=EngineConfig(max_concurrency=1),
            rng=np.random.default_rng(0),
        )
        assert engine.config.bos_id == tiny_tokenizer.bos_id
        assert engine.head.bos_id == tiny_tokenizer.bos_id


class TestSchedulerMemoization:
    def test_capacity_lookups_memoized_by_shape(self, monkeypatch):
        import repro.serving.scheduler as scheduler_module

        sim = PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, budget=2048)
        calls: list[tuple[int, int]] = []
        real = scheduler_module.max_fitting_batch

        def counting(sim_, engine_, in_len, out_len, candidates):
            calls.append((in_len, out_len))
            return real(sim_, engine_, in_len, out_len, candidates)

        monkeypatch.setattr(scheduler_module, "max_fitting_batch", counting)
        scheduler = StaticBatchScheduler(sim, SPECONTEXT)
        requests = [
            Request(request_id=i, in_len=2048, out_len=4096) for i in range(12)
        ]
        plans = scheduler.plan(requests)
        assert sum(len(p.request_ids) for p in plans) == 12
        # Naive planning called max_fitting_batch once per request added to
        # a group; memoized planning hits the simulator once per shape.
        assert calls == [(2048, 4096)]

    def test_memoized_plans_match_shapes(self, monkeypatch):
        sim = PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, budget=2048)
        scheduler = StaticBatchScheduler(sim, SPECONTEXT)
        mixed = [
            Request(request_id=i, in_len=2048 if i % 2 == 0 else 4096,
                    out_len=4096)
            for i in range(6)
        ]
        plans = scheduler.plan(mixed)
        assert sum(len(p.request_ids) for p in plans) == 6
        # Head shape (2048, 4096) plus the padded group shape (4096, 4096):
        # every other lookup is a cache hit.
        assert set(scheduler._capacity_cache) == {(2048, 4096), (4096, 4096)}
