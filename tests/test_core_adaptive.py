"""Tests for the adaptive memory manager — Algorithm 2 (paper Sec. 6.2.1)."""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import AdaptiveMemoryManager
from repro.core.memory_model import MemoryModel
from repro.hardware.memory import MemoryTier
from repro.hardware.spec import HardwareSpec
from repro.kvcache.pool import TieredKVStore
from repro.models.config import tiny_test_config
from repro.utils.units import GB


def make_manager(target_threshold: int = 400, requests: int = 1, **kwargs):
    """A manager whose first threshold lands near ``target_threshold``."""
    config = tiny_test_config(n_layers=4)
    hd = config.n_kv_heads * config.head_dim
    layers_eff = config.n_layers + 1 + config.group_size
    gpu_bytes = int(
        1.3 * config.parameter_bytes() + 4 * layers_eff * hd * target_threshold
    )
    spec = HardwareSpec(
        name="test", gpu_memory_bytes=gpu_bytes, cpu_memory_bytes=64 * GB,
        gpu_flops=1e12, gpu_bandwidth=1e11, pcie_bandwidth=1e9,
    )
    mm = MemoryModel(config, dlm_bytes=0, spec=spec, requests=requests, budget=64)
    return AdaptiveMemoryManager(mm, **kwargs)


class TestAdvance:
    def test_initial_state_all_on_gpu(self):
        manager = make_manager()
        assert manager.layers_on_cpu == 0
        assert manager.layers_on_gpu == manager.n_layers

    def test_short_sequence_triggers_nothing(self):
        manager = make_manager(target_threshold=10**6)
        assert manager.advance(128) == []

    def test_offloads_trailing_layers_first(self):
        manager = make_manager()
        thresholds = manager.thresholds()
        events = manager.advance(thresholds[0] + 1)
        assert events
        assert events[0].layer == manager.n_layers - 1  # the last layer first

    def test_progressive_offload_as_length_grows(self):
        manager = make_manager()
        thresholds = manager.thresholds()
        seen_layers = []
        for seq in range(1, max(thresholds) + 2):
            for event in manager.advance(seq):
                seen_layers.append(event.layer)
        # Layers leave in strictly descending order (L-1, L-2, ...).
        assert seen_layers == sorted(seen_layers, reverse=True)

    def test_advance_is_idempotent_at_fixed_length(self):
        manager = make_manager()
        seq = manager.thresholds()[0] + 1
        manager.advance(seq)
        assert manager.advance(seq) == []

    def test_required_offloads_matches_advance(self):
        manager = make_manager()
        seq = manager.thresholds()[1] + 1
        expected = manager.required_offloads(seq)
        manager.advance(seq)
        assert manager.layers_on_cpu == expected

    def test_layer_tier_tracks_offloads(self):
        manager = make_manager()
        seq = manager.thresholds()[0] + 1
        manager.advance(seq)
        last = manager.n_layers - 1
        assert manager.layer_tier(last) is MemoryTier.CPU
        assert manager.layer_tier(0) is MemoryTier.GPU

    def test_never_offloads_beyond_all_layers(self):
        manager = make_manager()
        manager.advance(10**9)
        assert manager.layers_on_cpu == manager.n_layers

    def test_events_report_freed_bytes(self):
        manager = make_manager()
        events = manager.advance(manager.thresholds()[0] + 1)
        assert all(e.bytes_freed > 0 for e in events)


class TestWithStores:
    def test_offload_evicts_store_payload(self):
        config = tiny_test_config(n_layers=4)
        stores = [
            TieredKVStore(config.n_kv_heads, config.head_dim)
            for _ in range(config.n_layers)
        ]
        rng = np.random.default_rng(0)
        n_tokens = 32
        for store in stores:
            kv = rng.standard_normal(
                (config.n_kv_heads, n_tokens, config.head_dim)
            )
            store.append(kv, kv.copy(), MemoryTier.GPU)
        manager = make_manager(stores=stores)
        events = manager.advance(manager.thresholds()[0] + 1)
        assert events
        for event in events:
            assert stores[event.layer].gpu_bytes() == 0
            assert event.bytes_freed > 0
