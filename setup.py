"""Legacy setup shim.

The execution environment has setuptools but no `wheel` package and no
network access, so PEP-517 editable installs fail; this shim lets
``pip install -e .`` take the legacy `setup.py develop` path. All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
