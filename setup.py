"""Legacy setup script.

The execution environment has setuptools but no `wheel` package and no
network access, so PEP-517 editable installs fail; this script keeps
``pip install -e .`` on the legacy `setup.py develop` path and registers
the console entry points.
"""

from setuptools import find_packages, setup

setup(
    name="specontext-repro",
    version="1.1.0",
    description="SpeContext (ASPLOS 2026) reproduction: speculative "
    "context sparsity for long-context LLM reasoning",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "specontext-experiments=repro.experiments.runner:main",
            "specontext-serve=repro.serving.cli:main",
        ]
    },
)
