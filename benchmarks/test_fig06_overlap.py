"""Bench: Figure 6 — prefetch imbalance and adjacent-step overlap."""

from __future__ import annotations

from repro.experiments.fig06_overlap import run


def test_fig06(benchmark):
    result = benchmark(run, quick=True)
    prefetch_ms = []
    overlaps = {}
    layer_ms = None
    for part, budget, value in result.rows:
        if part == "prefetch-latency":
            prefetch_ms.append((budget, float(value.split(" ")[0])))
        elif part == "layer-inference":
            layer_ms = float(value.split(" ")[0])
        elif part == "selection-overlap" and not value.startswith("budget"):
            overlaps[budget] = float(value.split(" ")[0])

    # (a) transfer latency grows with budget and overtakes a single layer's
    # compute at large budgets (Sec. 5.2's imbalance).
    latencies = [ms for _, ms in prefetch_ms]
    assert latencies == sorted(latencies)
    assert layer_ms is not None
    assert latencies[-1] > latencies[0]

    # (b) adjacent-step selection overlap rises with budget and reaches
    # the paper's >80% regime.
    budgets = sorted(overlaps)
    assert overlaps[budgets[-1]] >= 0.8
    assert overlaps[budgets[-1]] >= overlaps[budgets[0]]
