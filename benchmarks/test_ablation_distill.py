"""Bench: extension ablation — distillation quality drives retrieval accuracy."""

from __future__ import annotations

from repro.experiments.ablation_distill import run


def test_ablation_distill(benchmark):
    result = benchmark(run, quick=True)
    noises = [row[0] for row in result.rows]
    assert noises == sorted(noises)

    # At every budget, the best-distilled head is at least as accurate as
    # the worst-distilled one (the Sec. 3 monotonicity, coarse-grained).
    for col in range(1, len(result.headers) - 1):
        best = result.rows[0][col]
        worst = result.rows[-1][col]
        assert best >= worst - 1e-9

    # Full attention is noise-invariant (the head is not in its path).
    full_scores = {row[-1] for row in result.rows}
    assert len(full_scores) == 1
