"""Bench: Figure 10 — single-request throughput, cloud and edge."""

from __future__ import annotations

from repro.experiments.fig10_single_request import run


def _value(cell) -> float:
    return 0.0 if cell == "OOM" else float(cell)


def test_fig10(benchmark):
    result = benchmark(run, quick=True)
    mixes = result.headers[2:]
    rows = {(r[0], r[1]): dict(zip(mixes, r[2:])) for r in result.rows}

    cloud_ours = rows[("cloud", "Ours")]
    cloud_fi = rows[("cloud", "Full Attn(FlashInfer)")]
    cloud_eager = rows[("cloud", "Full Attn(Eager)")]
    for mix in mixes:
        # Ours is at least competitive with FlashInfer everywhere and far
        # ahead of HF eager.
        assert _value(cloud_ours[mix]) >= 0.9 * _value(cloud_fi[mix])
        if _value(cloud_eager[mix]):
            assert _value(cloud_ours[mix]) >= 3.0 * _value(cloud_eager[mix])

    # Edge (4GB): ours >= ShadowKV >= offloaded full attention; the
    # eager-vs-ours gap reaches the multi-x regime (paper: up to 10.06x).
    edge_ours = rows[("edge", "Ours")]
    edge_shadow = rows[("edge", "ShadowKV")]
    edge_eager = rows[("edge", "Full Attn(Eager, offload)")]
    gaps = []
    for mix in mixes:
        assert _value(edge_ours[mix]) >= _value(edge_shadow[mix])
        if _value(edge_eager[mix]):
            gaps.append(_value(edge_ours[mix]) / _value(edge_eager[mix]))
    assert max(gaps) >= 4.0

    # Eager OOMs at the 16K/32K prompts on the edge GPU (score-matrix
    # transient), as in Fig. 10(b).
    assert edge_eager["[16k, 2k]"] == "OOM"
    assert edge_eager["[32k, 2k]"] == "OOM"
