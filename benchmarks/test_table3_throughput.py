"""Bench: regenerate Table 3 and assert its headline shape claims."""

from __future__ import annotations

from repro.experiments.table3_throughput import run


def _tps(cell: str) -> float:
    if cell in ("OOM", "-"):
        return 0.0
    return float(cell.split(" ")[0])


def test_table3(benchmark):
    result = benchmark(run, quick=True)
    assert len(result.rows) == 8  # 2 models x 4 mixes

    for row in result.rows:
        by = dict(zip(result.headers, row))
        ours = _tps(by["Ours"])
        flashinfer = _tps(by["Full Attn(FlashInfer)"])
        flash = _tps(by["Full Attn(Flash Attn)"])
        eager = _tps(by["Full Attn(Eager)"])

        # Ours wins every cell; FlashInfer beats HF FlashAttention beats
        # eager (when eager runs at all).
        assert ours > flashinfer > flash
        if eager:
            assert flash > eager
            # Headline: order-of-magnitude class speedups vs eager in the
            # reasoning mixes (paper: up to 24.89x; shape: >= 8x).
            assert ours / eager >= 8.0

    # Eager OOMs on the long-input mixes at batch 4 (the paper's OOM cells).
    long_input_rows = [r for r in result.rows if r[1] in ("[16k, 2k]", "[32k, 2k]")]
    assert all(r[2] == "OOM" for r in long_input_rows)

    # ShadowKV unsupported on the Qwen-like model (the paper's '-').
    qwen_rows = [r for r in result.rows if "qwen" in r[0]]
    shadow_idx = result.headers.index("ShadowKV")
    assert all(r[shadow_idx] == "-" for r in qwen_rows)
