"""Bench: Sec. 7.4 — retrieval-head memory overhead and pruning ratio."""

from __future__ import annotations

from repro.experiments.overhead import run


def test_overhead(benchmark):
    result = benchmark(run, quick=True)
    rows = {r[0]: dict(zip(result.headers, r)) for r in result.rows}

    for teacher in ("llama3.1-8b-like", "qwen3-8b-like"):
        cells = rows[teacher]
        reduction = float(cells["Reduction"].rstrip("%"))
        # >90% parameter reduction vs the full DLM (Sec. 4's claim).
        assert reduction > 90.0
        # Head weights in the tens of MB (paper: "only about 60MB").
        head_mb = float(cells["Head FP16"].rstrip("MB"))
        assert 10.0 <= head_mb <= 150.0

    # The functional (constructed) head reports the same >90% reduction.
    functional = rows["tiny-gqa"]
    assert float(functional["Reduction"].rstrip("%")) > 90.0
