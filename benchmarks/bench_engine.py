"""Engine benchmark: multiprocess worker scaling under modeled dwell.

Replays one seeded mixed-prompt workload through
:class:`~repro.serving.engine.MultiprocExecutor` at increasing worker
counts and reports wall-clock throughput per count. Workers charge a
modeled accelerator dwell of ``pace_s_per_token`` seconds per token they
process (prefill + decode), slept *inside their own processes* — so the
executor's begin/end-step fan-out overlaps the dwell across workers and
the run wall-clock shrinks with the worker count even on one CPU, just
as N accelerators would overlap real compute.

Determinism is checked, not assumed: every multiprocess run's
per-request token streams must be bit-identical to an in-process
single-worker reference run of the same workload (the executor
bit-identity contract), and the exit status is non-zero if they differ.
CI gates ``--min-scaling`` on the throughput ratio between the largest
and smallest worker counts.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py              # full
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke \
        --min-scaling 1.3 --out BENCH_engine.json                 # CI gate
    PYTHONPATH=src python benchmarks/bench_engine.py --workers 1,2,4,8 \
        --requests 24 --pace-ms 3.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig, SamplingParams
from repro.api.request import GenerationRequest
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.serving.engine import InProcessExecutor, MultiprocExecutor


def build_model(args) -> tuple[TransformerLM, SyntheticTokenizer]:
    rng = np.random.default_rng(args.seed)
    tokenizer = SyntheticTokenizer(vocab_size=args.vocab)
    config = tiny_test_config(n_layers=args.layers, vocab_size=args.vocab)
    return TransformerLM(build_recall_model(config, tokenizer, rng)), tokenizer


def build_workload(
    tokenizer: SyntheticTokenizer, args
) -> list[GenerationRequest]:
    """Unique filler prompts: round-robin spreads the dwell evenly."""
    requests = []
    for i in range(args.requests):
        rng = np.random.default_rng(args.seed + 100 + i)
        filler = [
            int(t) for t in tokenizer.random_filler_ids(rng, args.prompt_len)
        ]
        requests.append(GenerationRequest(
            np.array([tokenizer.bos_id] + filler),
            sampling=SamplingParams(max_new_tokens=args.max_new_tokens),
            policy=args.policy,
            budget=args.budget,
        ))
    return requests


def clone(request: GenerationRequest) -> GenerationRequest:
    return GenerationRequest(
        request.prompt_ids.copy(),
        sampling=request.sampling,
        policy=request.policy,
        budget=request.budget,
        priority=request.priority,
    )


def engine_config(tokenizer: SyntheticTokenizer, args) -> EngineConfig:
    return EngineConfig(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.concurrency,
        seed=args.seed,
        block_size=args.block_size,
    )


def replay(model, tokenizer, requests, args, n_workers, kind, pace) -> dict:
    """One full submit-and-run through a fresh executor, wall-timed."""
    cluster = ClusterConfig(
        n_replicas=n_workers,
        router="round_robin",
        pace_s_per_token=pace,
        executor=kind.kind,
    )
    with kind(model, engine_config(tokenizer, args), cluster) as executor:
        start = time.perf_counter()
        gids = [executor.add_request(clone(r)) for r in requests]
        outputs = executor.run()
        wall_s = time.perf_counter() - start
        streams: dict[int, list[int]] = {gid: [] for gid in gids}
        for event in executor.pop_stream_events():
            streams[event.request_id].append(event.token_id)
        steps = int(executor.clock)
    generated = sum(len(o.token_ids) for o in outputs)
    return {
        "workers": n_workers,
        "wall_s": wall_s,
        "steps": steps,
        "generated_tokens": generated,
        "tokens_per_wall_s": generated / wall_s if wall_s > 0 else 0.0,
        "token_streams": [streams[gid] for gid in sorted(streams)],
    }


def run_best_of(model, tokenizer, requests, args, n_workers, kind, pace):
    best = None
    for _ in range(args.repeats):
        run = replay(model, tokenizer, requests, args, n_workers, kind, pace)
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    return best


def bench_engine(model, tokenizer, args) -> dict:
    requests = build_workload(tokenizer, args)
    pace = args.pace_ms / 1e3
    # Unpaced in-process single worker: the determinism reference.
    reference = replay(
        model, tokenizer, requests, args, 1, InProcessExecutor, 0.0
    )
    scaling = {}
    for n_workers in args.worker_counts:
        scaling[n_workers] = run_best_of(
            model, tokenizer, requests, args, n_workers, MultiprocExecutor,
            pace,
        )
    streams_identical = all(
        run.pop("token_streams") == reference["token_streams"]
        for run in scaling.values()
    )
    lo, hi = min(args.worker_counts), max(args.worker_counts)
    ratio = (
        scaling[hi]["tokens_per_wall_s"] / scaling[lo]["tokens_per_wall_s"]
        if scaling[lo]["tokens_per_wall_s"] > 0
        else 0.0
    )
    for run in scaling.values():
        run["throughput_x_vs_min_workers"] = (
            run["tokens_per_wall_s"] / scaling[lo]["tokens_per_wall_s"]
            if scaling[lo]["tokens_per_wall_s"] > 0
            else 0.0
        )
    return {
        "scaling": {str(k): v for k, v in scaling.items()},
        "throughput_scaling": ratio,
        "scaling_span": [lo, hi],
        "streams_identical": streams_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_engine",
        description="Process-parallel engine benchmark: multiprocess "
        "worker scaling under modeled per-token accelerator dwell.",
    )
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts to sweep")
    parser.add_argument("--requests", type=int, default=12)
    parser.add_argument("--prompt-len", type=int, default=48,
                        help="filler prompt length in tokens (excl. BOS)")
    parser.add_argument("--max-new-tokens", type=int, default=8)
    parser.add_argument("--policy", default="streaming")
    parser.add_argument("--budget", type=int, default=64)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--pace-ms", type=float, default=5.0,
                        help="modeled accelerator dwell per processed "
                        "token, in milliseconds")
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--vocab", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed replays per worker count; best is kept")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    parser.add_argument("--min-scaling", type=float, default=None,
                        help="exit non-zero if the largest worker count's "
                        "throughput falls below this multiple of the "
                        "smallest's")
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)
    args.worker_counts = sorted(
        {int(w) for w in args.workers.split(",") if w}
    )
    if args.smoke:
        args.worker_counts = [w for w in args.worker_counts if w <= 2] or [1, 2]
        args.requests = min(args.requests, 8)
        args.max_new_tokens = min(args.max_new_tokens, 6)
        args.repeats = min(args.repeats, 1)

    model, tokenizer = build_model(args)
    report = {
        "benchmark": "engine_scaling",
        "smoke": args.smoke,
        "workload": {
            "worker_counts": args.worker_counts,
            "requests": args.requests,
            "prompt_len": args.prompt_len,
            "max_new_tokens": args.max_new_tokens,
            "policy": args.policy,
            "budget": args.budget,
            "concurrency": args.concurrency,
            "block_size": args.block_size,
            "pace_ms": args.pace_ms,
            "layers": args.layers,
            "vocab": args.vocab,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        **bench_engine(model, tokenizer, args),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for count in report["workload"]["worker_counts"]:
        run = report["scaling"][str(count)]
        print(
            f"{count:2d} workers: {run['wall_s']:6.2f}s wall "
            f"| {run['generated_tokens']:4d} tokens "
            f"| {run['tokens_per_wall_s']:7.1f} tok/s "
            f"| {run['throughput_x_vs_min_workers']:.2f}x"
        )
    lo, hi = report["scaling_span"]
    print(
        f"{hi} vs {lo} workers: {report['throughput_scaling']:.2f}x "
        f"wall-clock throughput  |  streams identical: "
        f"{report['streams_identical']}"
    )
    print(f"wrote {args.out}")

    if not report["streams_identical"]:
        print(
            "FAIL: multiprocess streams differ from the in-process "
            "reference",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_scaling is not None
        and report["throughput_scaling"] < args.min_scaling
    ):
        print(
            f"FAIL: throughput scaling {report['throughput_scaling']:.2f}x "
            f"below required {args.min_scaling:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
