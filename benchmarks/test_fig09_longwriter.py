"""Bench: Figure 9 / Table 4 — reasoning-scenario judge scores."""

from __future__ import annotations

from repro.experiments.fig09_longwriter import run


def test_fig09(benchmark):
    result = benchmark(run, quick=True)
    avg_idx = result.headers.index("Average")
    rows = [dict(zip(result.headers, r)) for r in result.rows]

    full = next(r for r in rows if r["Engine"] == "Full Attn")
    assert full["Average"] >= 4.5  # the constructed model writes the plan

    # Baselines that retain generated KV are budget-invariant at budgets
    # >= the prompt length (the paper's Sec. 7.2.2 observation).
    for engine in ("ClusterKV", "ShadowKV"):
        scores = {r["Average"] for r in rows if r["Engine"] == engine}
        if scores:
            assert max(scores) - min(scores) <= 0.5

    # Ours improves with budget and approaches full attention at the top.
    ours = [r for r in rows if r["Engine"] == "Ours"]
    assert len(ours) >= 2
    assert ours[-1]["Average"] >= ours[0]["Average"]
    assert ours[-1]["Average"] >= 0.75 * full["Average"]
    assert avg_idx == len(result.headers) - 1
