"""Robustness benchmark: goodput under bursty overload with deadlines.

Replays one seeded bursty (on/off) trace of deadline-carrying requests —
bursts arrive faster than the server can drain, so queues build and
total deadlines become infeasible for late burst members — through
identical :class:`~repro.serving.server.SpeContextServer`s that differ
only in the admission policy, and reports per-policy:

- **goodput** (tokens of requests that finished *within their deadline*
  per server step — the paper-level robustness currency): the server
  cancels any request whose deadline expires, so every finished request
  met its SLO by construction, and goodput is finished work over time;
- SLO attainment (finished / offered), shed rate (admission rejections),
  expiry rate (typed ``deadline_exceeded`` failures), wasted tokens
  (streamed to requests that later expired mid-flight);
- TTFT / latency percentiles on the step clock.

``accept_all`` admits everything: doomed requests occupy batch slots and
pool blocks until their deadline kills them, and the tokens they
streamed are pure waste. ``queue_depth`` and ``deadline_feasible`` shed
early — infeasible work never reaches the batch — so the server spends
its steps on requests that can still win. CI gates
``--min-goodput-gain`` on the best-policy/accept_all goodput ratio.

A second section exercises stall-tolerant failover: the same seeded
trace replayed on the process-parallel engine, clean vs a worker-kill
chaos plan, asserting per-request streams stay bit-identical (the
exactly-once failover contract) and reporting the failover tax in extra
steps.

Usage::

    PYTHONPATH=src python benchmarks/bench_robustness.py          # full
    PYTHONPATH=src python benchmarks/bench_robustness.py --smoke \
        --min-goodput-gain 1.0 --out BENCH_robustness.json        # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig, SamplingParams
from repro.api.request import GenerationRequest
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.serving.chaos import Fault, FaultPlan, run_chaos
from repro.serving.engine import make_executor
from repro.serving.server import SpeContextServer
from repro.serving.trace import TraceEntry, bursty_trace, replay_trace

POLICIES = ("accept_all", "queue_depth", "deadline_feasible")


def build_model(args) -> tuple[TransformerLM, SyntheticTokenizer]:
    rng = np.random.default_rng(args.seed)
    tokenizer = SyntheticTokenizer(vocab_size=args.vocab)
    config = tiny_test_config(n_layers=args.layers, vocab_size=args.vocab)
    return TransformerLM(build_recall_model(config, tokenizer, rng)), tokenizer


def build_overload_trace(
    tokenizer: SyntheticTokenizer, args
) -> list[TraceEntry]:
    """Bursty deadline workload: every request must finish in ``deadline``.

    Bursts of ``burst_size`` land nearly at once, far above what
    ``concurrency`` slots can start, then an off gap gives slack. Every
    request carries the same total deadline, sized so early burst
    members are comfortably feasible and late members are not.
    """
    rng = np.random.default_rng(args.seed)
    requests = []
    for i in range(args.requests):
        prompt_rng = np.random.default_rng(args.seed + 30_000 + i)
        prompt = [int(tokenizer.bos_id)] + [
            int(t)
            for t in tokenizer.random_filler_ids(prompt_rng, args.prompt_len)
        ]
        requests.append(
            GenerationRequest(
                np.array(prompt),
                sampling=SamplingParams(
                    max_new_tokens=args.max_new_tokens,
                    total_deadline_s=args.deadline,
                ),
            )
        )
    return bursty_trace(
        rng,
        requests,
        burst_size=args.burst_size,
        on_mean_interarrival_steps=args.on_interarrival,
        off_steps=args.off_steps,
    )


def clone_entry(entry: TraceEntry) -> TraceEntry:
    return TraceEntry(
        arrival_step=entry.arrival_step,
        request=GenerationRequest(
            entry.request.prompt_ids.copy(),
            sampling=entry.request.sampling,
        ),
    )


def replay_policy(model, trace, args, admission: str) -> dict:
    """Replay the trace under one admission policy; aggregate the run."""
    opts = {}
    if admission == "queue_depth":
        opts["max_waiting"] = args.max_waiting
    elif admission == "deadline_feasible":
        opts["queue_delay_per_waiting"] = args.queue_delay_per_waiting
    config = EngineConfig(
        budget=args.budget,
        bos_id=args.bos_id,
        max_concurrency=args.concurrency,
        seed=args.seed,
        admission=admission,
        admission_opts=opts,
    )
    server = SpeContextServer(model, config)
    shed: list[str] = []
    events = []
    steps = 0

    def on_reject(request, err):
        shed.append(err.code)

    def observer(stepped):
        nonlocal steps
        steps += 1
        events.extend(stepped.pop_stream_events())

    clones = [clone_entry(e) for e in trace]
    outputs = replay_trace(
        server, clones, observer=observer, on_reject=on_reject,
    )
    # Admission shedding shifts id assignment (shed requests never consume
    # an id), so cross-policy comparison must key streams by *trace
    # position*, not request id. The server stamps ids onto admitted
    # clones in place; shed clones keep request_id=None.
    rid_to_index = {
        c.request.request_id: i
        for i, c in enumerate(clones)
        if c.request.request_id is not None
    }
    failures = server.pop_failures()
    # Tokens streamed to requests that later expired: work the server
    # did and then threw away. (Finished requests met their deadline by
    # construction — expiry would have cancelled them first.)
    expired_ids = {f.request_id for f in failures}
    wasted_tokens = sum(
        1
        for e in events
        if e.request_id in expired_ids and e.error is None
    )
    meter = server.meter
    goodput_tokens = sum(len(o.token_ids) for o in outputs)
    return {
        "admission": admission,
        "offered": len(trace),
        "finished_in_slo": len(outputs),
        "shed": len(shed),
        "expired": len(failures),
        "steps": steps,
        "goodput_tokens": goodput_tokens,
        "goodput_tokens_per_step": goodput_tokens / steps if steps else 0.0,
        "slo_attainment": len(outputs) / len(trace) if trace else 1.0,
        "shed_rate": len(shed) / len(trace) if trace else 0.0,
        "wasted_tokens": wasted_tokens,
        "ttft_steps_p50": meter.ttft_percentile(50),
        "ttft_steps_p95": meter.ttft_percentile(95),
        "latency_steps_p95": meter.latency_percentile(95),
        "token_streams": sorted(
            (rid_to_index[o.request_id], list(o.token_ids)) for o in outputs
        ),
    }


def bench_failover(model, tokenizer, args) -> dict:
    """Clean vs worker-kill replay on the engine: streams must match."""
    config = EngineConfig(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.concurrency,
        seed=args.seed,
    )
    cluster = ClusterConfig(n_replicas=2, executor="inproc")

    def fresh_trace():
        rng = np.random.default_rng(args.seed)
        requests = [
            GenerationRequest(
                np.array(
                    [int(tokenizer.bos_id)]
                    + [
                        int(t)
                        for t in tokenizer.random_filler_ids(
                            np.random.default_rng(args.seed + 40_000 + i),
                            args.prompt_len,
                        )
                    ]
                ),
                sampling=SamplingParams(max_new_tokens=args.max_new_tokens),
            )
            for i in range(min(args.requests, 12))
        ]
        return bursty_trace(
            rng, requests, args.burst_size, args.on_interarrival,
            args.off_steps,
        )

    reports = {}
    for name, plan in (
        ("clean", FaultPlan("clean")),
        ("kill", FaultPlan("kill", (Fault(step=2, kind="kill", worker=0),))),
    ):
        executor = make_executor(model, config, cluster)
        try:
            reports[name] = run_chaos(executor, fresh_trace(), plan)
        finally:
            executor.shutdown()
    clean, kill = reports["clean"], reports["kill"]
    return {
        "streams_identical": (
            kill.foreground_streams == clean.foreground_streams
        ),
        "clean_steps": clean.steps,
        "kill_steps": kill.steps,
        "failover_extra_steps": kill.steps - clean.steps,
        "resubmissions": len(kill.resubmissions),
    }


def bench_robustness(model, tokenizer, args) -> dict:
    args.bos_id = tokenizer.bos_id
    trace = build_overload_trace(tokenizer, args)
    policies = {}
    for admission in POLICIES:
        policies[admission] = replay_policy(model, trace, args, admission)
    streams = {
        name: dict(p.pop("token_streams")) for name, p in policies.items()
    }
    # Shedding changes *which* requests run, never the tokens of those
    # that do: every stream a policy produced must be bit-identical to
    # accept_all's stream for the same request id.
    reference = streams["accept_all"]
    streams_consistent = all(
        tokens == reference[rid]
        for name in POLICIES
        for rid, tokens in streams[name].items()
        if rid in reference
    )
    baseline = policies["accept_all"]["goodput_tokens_per_step"]
    best_name = max(
        POLICIES, key=lambda p: policies[p]["goodput_tokens_per_step"]
    )
    best = policies[best_name]["goodput_tokens_per_step"]
    goodput_gain = best / baseline if baseline > 0 else float("inf")
    return {
        "policies": policies,
        "best_policy": best_name,
        "goodput_gain": goodput_gain,
        "streams_consistent": streams_consistent,
        "failover": bench_failover(model, tokenizer, args),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_robustness",
        description="Overload-safe serving benchmark: goodput under bursty "
        "deadline load across admission policies, plus failover bit-identity.",
    )
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--burst-size", type=int, default=12,
                        help="requests per on-burst")
    parser.add_argument("--on-interarrival", type=float, default=0.2,
                        help="mean inter-arrival steps inside a burst")
    parser.add_argument("--off-steps", type=float, default=8.0,
                        help="mean idle gap between bursts in steps")
    parser.add_argument("--deadline", type=float, default=16.0,
                        help="per-request total deadline in steps")
    parser.add_argument("--prompt-len", type=int, default=12)
    parser.add_argument("--max-new-tokens", type=int, default=8)
    parser.add_argument("--budget", type=int, default=64)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--max-waiting", type=int, default=4,
                        help="queue_depth admission cap")
    parser.add_argument("--queue-delay-per-waiting", type=float, default=2.0,
                        help="deadline_feasible queue-delay estimate "
                        "(steps per waiting request)")
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--vocab", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    parser.add_argument("--min-goodput-gain", type=float, default=None,
                        help="exit non-zero if the best admission policy's "
                        "goodput falls below this multiple of accept_all's")
    parser.add_argument("--out", default="BENCH_robustness.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 24)
        args.burst_size = min(args.burst_size, 8)
        args.layers = min(args.layers, 2)

    model, tokenizer = build_model(args)
    report = {
        "benchmark": "robustness_overload",
        "smoke": args.smoke,
        "workload": {
            "requests": args.requests,
            "burst_size": args.burst_size,
            "on_interarrival": args.on_interarrival,
            "off_steps": args.off_steps,
            "deadline_steps": args.deadline,
            "prompt_len": args.prompt_len,
            "max_new_tokens": args.max_new_tokens,
            "budget": args.budget,
            "concurrency": args.concurrency,
            "max_waiting": args.max_waiting,
            "queue_delay_per_waiting": args.queue_delay_per_waiting,
            "layers": args.layers,
            "vocab": args.vocab,
            "seed": args.seed,
        },
        **bench_robustness(model, tokenizer, args),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for name in POLICIES:
        p = report["policies"][name]
        print(
            f"{name:>18}: goodput {p['goodput_tokens_per_step']:5.2f} tok/step"
            f" | SLO {p['slo_attainment']:4.0%} | shed {p['shed']:3d}"
            f" | expired {p['expired']:3d} | wasted {p['wasted_tokens']:3d} tok"
        )
    failover = report["failover"]
    print(
        f"best policy {report['best_policy']} at "
        f"{report['goodput_gain']:.2f}x accept_all goodput | "
        f"failover: +{failover['failover_extra_steps']} steps, "
        f"{failover['resubmissions']} resubmissions, streams identical: "
        f"{failover['streams_identical']}"
    )
    print(f"wrote {args.out}")

    if not report["streams_consistent"]:
        print("FAIL: admitted streams differ across admission policies",
              file=sys.stderr)
        return 1
    if not failover["streams_identical"]:
        print("FAIL: failover streams differ from clean run", file=sys.stderr)
        return 1
    if (
        args.min_goodput_gain is not None
        and report["goodput_gain"] < args.min_goodput_gain
    ):
        print(
            f"FAIL: goodput gain {report['goodput_gain']:.2f}x below "
            f"required {args.min_goodput_gain:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
