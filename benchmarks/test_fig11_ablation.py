"""Bench: Figure 11 — each contribution adds speedup monotonically."""

from __future__ import annotations

from repro.experiments.fig11_ablation import run


def _value(cell) -> float:
    return 0.0 if cell == "OOM" else float(cell)


def test_fig11(benchmark):
    result = benchmark(run, quick=True)
    for row in result.rows:
        cells = dict(zip(result.headers, row))
        c1 = _value(cells["HF+C1"])
        c2 = _value(cells["HF+C1+C2"])
        c3 = _value(cells["HF+C1+C2+C3"])
        base = _value(cells["HF"])
        # Monotone ablation: every contribution helps.
        assert c3 > c2 > c1 > 0
        if base:
            assert c1 > base
            # End-to-end gain in the paper's 14-25x class; assert >= 8x.
            assert c3 / base >= 8.0

    # The elastic-loading note quantifies C2's transfer reduction
    # (paper: up to 90%; assert a substantial cut).
    note = next(n for n in result.notes if "elastic" in n)
    reduction = int(note.split("(")[1].split("%")[0])
    assert reduction >= 60
