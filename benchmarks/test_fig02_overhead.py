"""Bench: Figure 2(a)'s motivating overheads."""

from __future__ import annotations

from repro.experiments.fig02_overhead import run


def test_fig02(benchmark):
    result = benchmark(run, quick=True)
    rows = {(r[0], r[1]): r[2] for r in result.rows}

    # Layer-wise retrieval + synchronous loading eats a large share of the
    # decode step (paper: up to 60%).
    worst = rows[("retrieval-overhead", "worst observed")]
    assert float(worst.split("%")[0]) >= 25.0

    # The offload cliff: a small length increase across the memory
    # boundary degrades throughput by more than 80%.
    cliff_rows = [v for (part, _), v in rows.items() if part == "offload-cliff"]
    degradation = next(v for v in cliff_rows if "paper" in v)
    assert float(degradation.split("%")[0]) >= 80.0

    below, above = (v for v in cliff_rows if v.endswith("tok/s"))
    assert float(below.split(" ")[0]) > 4 * float(above.split(" ")[0])
