"""Bench: Figure 1's Pareto frontiers — SpeContext pushes both panels."""

from __future__ import annotations

from repro.experiments.fig01_pareto import run


def test_fig01(benchmark):
    result = benchmark(run, quick=True)
    by_engine: dict[str, list[dict]] = {}
    for row in result.rows:
        cells = dict(zip(result.headers, row))
        by_engine.setdefault(cells["Engine"], []).append(cells)

    ours = max(by_engine["Ours"], key=lambda c: c["Budget (~paper)"])
    # Ours dominates throughput in both scenarios at the larger budget...
    for other, rows in by_engine.items():
        if other == "Ours":
            continue
        for cells in rows:
            assert ours["thpt(input)"] >= cells["thpt(input)"]
            assert ours["thpt(reasoning)"] >= cells["thpt(reasoning)"]
    # ...while matching full-attention accuracy (Pareto-dominant point).
    assert ours["acc(input)"] >= 0.95
    assert ours["acc(reasoning)"] >= 0.95

    # The reasoning panel is where sparsity baselines collapse to
    # full-attention behaviour: their reasoning accuracy is budget-flat.
    for name in ("Quest", "ClusterKV", "ShadowKV"):
        accs = {c["acc(reasoning)"] for c in by_engine[name]}
        assert len(accs) == 1
