"""Bench: Figure 8 — accuracy rises with budget; Ours reaches full attention."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig08_longbench import run


def test_fig08(benchmark):
    result = benchmark(run, quick=True)
    budget_cols = [h for h in result.headers if h.startswith("B=")]
    table: dict[tuple[str, str], list[float]] = {}
    for row in result.rows:
        table[(row[0], row[1])] = [float(v) for v in row[2:]]

    tasks = {task for task, _ in table}
    assert tasks == {"trivia", "2wikimqa", "hotpotqa", "passage_count"}

    for task in tasks:
        full = table[(task, "Full Attn")][-1]
        ours = table[(task, "Ours")]
        # Accuracy is non-degrading with budget on average and the largest
        # budget approaches full attention.
        assert ours[-1] >= ours[0] - 0.15
        assert ours[-1] >= 0.5 * full

    # Averaged over tasks, Ours at the largest budget is competitive with
    # every baseline at that budget (the paper's >=1K crossover).
    last = len(budget_cols) - 1
    ours_mean = np.mean([table[(t, "Ours")][last] for t in tasks])
    quest_mean = np.mean([table[(t, "Quest")][last] for t in tasks])
    assert ours_mean >= quest_mean - 0.2
