"""Serving benchmarks: batched decode, chunked prefill, speculative decode.

Three sub-benchmarks share one timed trace-replay harness and emit a
single ``BENCH_serving.json`` so each PR leaves a recorded perf
trajectory:

1. **Batched decode** — replays a seeded Poisson-arrival trace of
   identical-shape sessions through two :class:`SpeContextServer`s that
   differ only in ``EngineConfig.batched_decode``; reports tokens/s,
   decode-phase tokens/s, step-latency percentiles and the
   batched-over-sequential ``speedup`` (CI gates on ``--min-speedup``).

2. **Chunked prefill** — replays a mixed trace (steady short-prompt
   decode traffic plus one long-prompt arrival) through a monolithic
   server and a chunked one (``prefill_chunk_tokens``/``max_step_tokens``
   set); reports wall-clock TTFT p50/p95, queueing delay, decode-step
   latency percentiles and per-step token-budget accounting. The long
   prefill freezes the monolithic decode wave for one giant step —
   head-of-line blocking — while the chunked server streams it in under
   the step budget, so TTFT p95 and decode-step p95 must improve
   (CI gates on ``--min-ttft-gain``).

3. **Speculative decode** — replays a mixed trace (periodic prompts the
   distilled draft model predicts nearly perfectly, plus unpredictable
   fillers) with ``spec_decode_k`` off and on; reports the acceptance
   rate, tokens per verify pass, decode-phase tokens/s and the
   speculative-over-baseline ``speedup``. Accepted streams are verified
   bit-identical to the non-speculative run. CI gates on
   ``--min-accept-rate`` / ``--min-spec-speedup``; ``--spec-smoke``
   runs only this sub-benchmark as a fast gate lane.

Every mode entry carries the meter's makespan *and* busy-period
throughput (trace replay jumps the clock across arrival gaps, which
deflates makespan-based tokens/s on sparse traces) plus step-clock TTFT
and queueing-delay percentiles. Both sub-benchmarks refuse to report a
win built on wrong tokens: the compared modes' streams are checked bit
for bit and the exit status is non-zero on mismatch.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke \
        --min-speedup 1.0 --min-ttft-gain 1.0                    # CI gate
    PYTHONPATH=src python benchmarks/bench_serving.py --sessions 16 \
        --policy quest --long-prompt-len 1024 --out BENCH_serving.json
    PYTHONPATH=src python benchmarks/bench_serving.py --spec-smoke \
        --min-accept-rate 0.5 --min-spec-speedup 1.0    # spec gate lane
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.api.config import EngineConfig, SamplingParams
from repro.api.request import GenerationRequest
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.retrieval.registry import resolve_policy_name
from repro.serving.server import SpeContextServer
from repro.serving.trace import TraceEntry, poisson_trace


def build_model(args) -> tuple[TransformerLM, SyntheticTokenizer]:
    rng = np.random.default_rng(args.seed)
    tokenizer = SyntheticTokenizer(vocab_size=args.vocab)
    config = tiny_test_config(n_layers=args.layers, vocab_size=args.vocab)
    return TransformerLM(build_recall_model(config, tokenizer, rng)), tokenizer


def filler_request(
    tokenizer: SyntheticTokenizer, seed: int, prompt_len: int, max_new: int, args
) -> GenerationRequest:
    prompt_rng = np.random.default_rng(seed)
    ids = [int(t) for t in tokenizer.random_filler_ids(prompt_rng, prompt_len)]
    return GenerationRequest(
        np.array([tokenizer.bos_id] + ids),
        sampling=SamplingParams(max_new_tokens=max_new),
        policy=args.policy,
        budget=args.budget,
    )


def build_poisson_workload(
    model: TransformerLM, tokenizer: SyntheticTokenizer, args
) -> list[TraceEntry]:
    """Seeded Poisson trace of identical-shape sessions.

    Uniform prompt length / budget / policy keeps every decode step's
    selection shapes aligned, so the batched server fuses all sessions
    into single attention groups — the configuration the paper's
    throughput tables (Table 3) are built around.
    """
    requests = [
        filler_request(
            tokenizer, args.seed + 100 + i, args.prompt_len, args.max_new_tokens, args
        )
        for i in range(args.sessions)
    ]
    return poisson_trace(
        np.random.default_rng(args.seed), requests, args.mean_interarrival
    )


def build_mixed_workload(
    model: TransformerLM, tokenizer: SyntheticTokenizer, args
) -> list[TraceEntry]:
    """Steady short-prompt decode traffic plus one long-prompt arrival.

    A few shorts co-arrive with (just before) the long prompt: in the
    monolithic server their first tokens queue behind its entire inline
    prefill, which is exactly the head-of-line stall chunked prefill
    removes. The rest arrive at a steady cadence before and after.
    """
    entries: list[TraceEntry] = []
    # Shorts queued at the long prompt's arrival step (capped so the
    # trace always holds exactly short_sessions short requests).
    burst = min(3, args.short_sessions)
    steady = args.short_sessions - burst
    # A compact trace keeps the total step count small enough that the
    # monolithic prefill stall carries real weight in the p95s instead of
    # hiding beyond them in a long tail of easy steps.
    arrivals = [min(i, args.long_arrival) for i in range(steady)]
    arrivals += [args.long_arrival] * burst
    for i, arrival in enumerate(sorted(arrivals)):
        entries.append(
            TraceEntry(
                arrival_step=arrival,
                request=filler_request(
                    tokenizer,
                    args.seed + 500 + i,
                    args.short_prompt_len,
                    args.short_max_new,
                    args,
                ),
            )
        )
    entries.append(
        TraceEntry(
            arrival_step=args.long_arrival,
            request=filler_request(
                tokenizer, args.seed + 999, args.long_prompt_len, 8, args
            ),
        )
    )
    return entries


def build_spec_workload(tokenizer: SyntheticTokenizer, args) -> list[TraceEntry]:
    """Mixed speculative-decoding trace: periodic sessions plus fillers.

    Periodic prompts repeat a short content pattern, so the distilled
    draft model (an induction head) predicts their continuations almost
    perfectly; filler prompts are unpredictable and keep the acceptance
    rate honest. All prompts share one length and the dense ``full``
    policy so the verify fast path sees aligned rows, mirroring the
    uniform-shape convention of the Poisson workload.
    """
    entries: list[TraceEntry] = []
    for i in range(args.spec_periodic_sessions):
        period = 6 + (i % 4) * 2
        prompt_rng = np.random.default_rng(args.seed + 700 + i)
        pattern = [int(t) for t in tokenizer.random_content_ids(prompt_rng, period)]
        reps, rem = divmod(args.spec_prompt_len - 1, period)
        ids = pattern * reps + pattern[:rem]
        entries.append(
            TraceEntry(
                arrival_step=0,
                request=GenerationRequest(
                    np.array([tokenizer.bos_id] + ids),
                    sampling=SamplingParams(max_new_tokens=args.spec_max_new),
                    policy="full",
                ),
            )
        )
    for i in range(args.spec_filler_sessions):
        prompt_rng = np.random.default_rng(args.seed + 800 + i)
        ids = [
            int(t)
            for t in tokenizer.random_content_ids(
                prompt_rng, args.spec_prompt_len - 1
            )
        ]
        entries.append(
            TraceEntry(
                arrival_step=0,
                request=GenerationRequest(
                    np.array([tokenizer.bos_id] + ids),
                    sampling=SamplingParams(max_new_tokens=args.spec_max_new),
                    policy="full",
                ),
            )
        )
    return entries


def clone_entry(entry: TraceEntry) -> TraceEntry:
    return TraceEntry(
        arrival_step=entry.arrival_step,
        request=GenerationRequest(
            entry.request.prompt_ids.copy(),
            sampling=entry.request.sampling,
            policy=entry.request.policy,
            budget=entry.request.budget,
            priority=entry.request.priority,
        ),
    )


def replay_timed(
    model: TransformerLM, trace: list[TraceEntry], config: EngineConfig
) -> dict:
    """Replay ``trace`` through a fresh server, wall-clock-timing each step.

    Returns raw per-run data: step records (wall seconds, prefill tokens
    computed, decode tokens emitted), wall-clock TTFT per request
    (submission to first stream event), outputs and the meter.
    """
    server = SpeContextServer(model, config)
    entries = sorted((clone_entry(e) for e in trace), key=lambda e: e.arrival_step)
    submitted = 0
    steps: list[dict] = []
    submit_wall: dict[int, float] = {}
    first_token_wall: dict[int, float] = {}
    while submitted < len(entries) or server.has_unfinished:
        while (
            submitted < len(entries)
            and entries[submitted].arrival_step <= server.clock
        ):
            request_id = server.add_request(entries[submitted].request)
            submit_wall[request_id] = time.perf_counter()
            submitted += 1
        if not server.has_unfinished:
            server.advance_clock_to(entries[submitted].arrival_step)
            continue
        start = time.perf_counter()
        server.step()
        end = time.perf_counter()
        events = server.pop_stream_events()
        for event in events:
            first_token_wall.setdefault(event.request_id, end)
        steps.append(
            {
                "wall_s": end - start,
                "prefill_tokens": server.last_step_prefill_tokens,
                "decode_tokens": len(events),
            }
        )
    outputs = sorted(server.outputs, key=lambda o: o.request_id)
    ttft_wall_s = {
        rid: first_token_wall[rid] - submit_wall[rid] for rid in first_token_wall
    }
    return {
        "server": server,
        "steps": steps,
        "outputs": outputs,
        "ttft_wall_s": ttft_wall_s,
    }


def _pct(values, q) -> float:
    return float(np.percentile(values, q)) if len(values) else 0.0


def mode_metrics(run: dict, config: EngineConfig) -> dict:
    """Aggregate one replay into the reported per-mode entry."""
    server = run["server"]
    meter = server.meter
    steps = run["steps"]
    wall = np.array([s["wall_s"] for s in steps])
    prefill_tokens = np.array([s["prefill_tokens"] for s in steps])
    decode_tokens = np.array([s["decode_tokens"] for s in steps])
    scheduled = prefill_tokens + decode_tokens
    # Two views of "decode steps": the throughput ratio compares *pure*
    # decode waves (prefill work is identical in both batched modes and
    # would dilute the speedup toward 1.0), while the latency
    # percentiles cover every step that emitted a token — in monolithic
    # mode an admitting step carries a whole prompt prefill and lands in
    # exactly the decode percentiles it inflates.
    pure_decode_mask = (decode_tokens > 0) & (prefill_tokens == 0)
    decode_mask = decode_tokens > 0
    generated = sum(len(o.token_ids) for o in run["outputs"])
    wall_s = float(wall.sum())
    pure_decode_wall = wall[pure_decode_mask]
    decode_wall = wall[decode_mask]
    ttfts_ms = [1e3 * t for t in run["ttft_wall_s"].values()]
    return {
        "steps": len(steps),
        "generated_tokens": generated,
        "wall_s": wall_s,
        "tokens_per_s": generated / wall_s if wall_s > 0 else 0.0,
        "decode_steps": int(pure_decode_mask.sum()),
        "decode_tokens_per_s": (
            float(decode_tokens[pure_decode_mask].sum())
            / float(pure_decode_wall.sum())
            if pure_decode_wall.sum() > 0
            else 0.0
        ),
        "step_latency_ms": {
            "mean": float(wall.mean() * 1e3) if len(wall) else 0.0,
            "p50": _pct(wall * 1e3, 50),
            "p95": _pct(wall * 1e3, 95),
        },
        "decode_step_latency_ms": {
            "p50": _pct(decode_wall * 1e3, 50),
            "p95": _pct(decode_wall * 1e3, 95),
        },
        "ttft_ms": {
            "mean": float(np.mean(ttfts_ms)) if ttfts_ms else 0.0,
            "p50": _pct(ttfts_ms, 50),
            "p95": _pct(ttfts_ms, 95),
        },
        "ttft_steps": {
            "p50": meter.ttft_percentile(50),
            "p95": meter.ttft_percentile(95),
        },
        "queueing_delay_steps": {
            "mean": meter.mean_queueing_delay_s,
            "p50": meter.queueing_delay_percentile(50),
            "p95": meter.queueing_delay_percentile(95),
        },
        "tokens_per_step": meter.tokens_per_second,
        "busy_tokens_per_step": meter.busy_tokens_per_second,
        "step_tokens": {
            "budget": config.max_step_tokens,
            "mean": float(scheduled.mean()) if len(scheduled) else 0.0,
            "max": int(scheduled.max()) if len(scheduled) else 0,
        },
        "token_streams": [o.token_ids for o in run["outputs"]],
    }


def run_best_of(model, trace, config: EngineConfig, repeats: int) -> dict:
    best = None
    for _ in range(repeats):
        run = mode_metrics(replay_timed(model, trace, config), config)
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    return best


def bench_spec_decode(model, tokenizer, args) -> dict:
    """Sub-benchmark 3: speculative vs plain decode on the mixed spec trace.

    Both modes replay the identical trace; the speculative run drafts
    with the distilled model and must stream bit-identical tokens — the
    comparison isolates the verify-wave throughput win, not output
    drift. Acceptance telemetry comes from the server's own counters.
    """
    trace = build_spec_workload(tokenizer, args)
    base = dict(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=len(trace),
        seed=args.seed,
        kv_dtype=args.kv_dtype,
    )
    results: dict[str, dict] = {}
    spec_stats = None
    for mode, k in (("baseline", 0), ("speculative", args.spec_k)):
        config = EngineConfig(**base, spec_decode_k=k)
        best = None
        best_run = None
        for _ in range(args.repeats):
            run = replay_timed(model, trace, config)
            metrics = mode_metrics(run, config)
            # Best-of selects on the gated metric: decode-phase
            # throughput is what the speedup ratio compares, and taking
            # each mode's best run cancels one-sided scheduler noise
            # that a wall-clock pick would leak into the ratio.
            if (
                best is None
                or metrics["decode_tokens_per_s"] > best["decode_tokens_per_s"]
            ):
                best, best_run = metrics, run
        results[mode] = best
        if k > 0:
            spec_stats = best_run["server"].spec_stats
    streams_identical = (
        results["baseline"].pop("token_streams")
        == results["speculative"].pop("token_streams")
    )
    speedup = (
        results["speculative"]["decode_tokens_per_s"]
        / results["baseline"]["decode_tokens_per_s"]
        if results["baseline"]["decode_tokens_per_s"] > 0
        else 0.0
    )
    return {
        "workload": {
            "periodic_sessions": args.spec_periodic_sessions,
            "filler_sessions": args.spec_filler_sessions,
            "prompt_len": args.spec_prompt_len,
            "max_new_tokens": args.spec_max_new,
            "policy": "full",
            "spec_k": args.spec_k,
        },
        "baseline": results["baseline"],
        "speculative": results["speculative"],
        "acceptance_rate": spec_stats.acceptance_rate,
        "spec_steps": spec_stats.spec_steps,
        "drafted": spec_stats.drafted,
        "accepted": spec_stats.accepted,
        "tokens_per_spec_step": spec_stats.tokens_per_spec_step,
        "speedup": speedup,
        "streams_identical": streams_identical,
    }


def bench_batched_decode(model, tokenizer, args) -> dict:
    """Sub-benchmark 1: batched vs sequential decode on a Poisson trace."""
    trace = build_poisson_workload(model, tokenizer, args)
    results = {}
    for batched in (False, True):
        config = EngineConfig(
            budget=args.budget,
            bos_id=tokenizer.bos_id,
            max_concurrency=args.sessions,
            seed=args.seed,
            batched_decode=batched,
            kv_dtype=args.kv_dtype,
        )
        mode = "batched" if batched else "sequential"
        results[mode] = run_best_of(model, trace, config, args.repeats)
        results[mode]["mode"] = mode
    streams_identical = (
        results["batched"].pop("token_streams")
        == results["sequential"].pop("token_streams")
    )
    speedup = (
        results["batched"]["decode_tokens_per_s"]
        / results["sequential"]["decode_tokens_per_s"]
        if results["sequential"]["decode_tokens_per_s"] > 0
        else 0.0
    )
    speedup_end_to_end = (
        results["batched"]["tokens_per_s"] / results["sequential"]["tokens_per_s"]
        if results["sequential"]["tokens_per_s"] > 0
        else 0.0
    )
    return {
        "sequential": results["sequential"],
        "batched": results["batched"],
        "speedup": speedup,
        "speedup_end_to_end": speedup_end_to_end,
        "streams_identical": streams_identical,
    }


def bench_chunked_prefill(model, tokenizer, args) -> dict:
    """Sub-benchmark 2: chunked vs monolithic prefill on the mixed trace.

    Both servers run the ``sjf`` scheduler so short prompts order ahead
    of the long one at admission *and* (chunked) in the prefill phase —
    the comparison isolates inline-vs-chunked prefill, not queue order.
    """
    trace = build_mixed_workload(model, tokenizer, args)
    base = dict(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.short_sessions + 1,
        seed=args.seed,
        kv_dtype=args.kv_dtype,
        scheduler="sjf",
    )
    monolithic = run_best_of(model, trace, EngineConfig(**base), args.repeats)
    chunked_config = EngineConfig(
        **base,
        prefill_chunk_tokens=args.prefill_chunk_tokens,
        max_step_tokens=args.max_step_tokens,
    )
    chunked = run_best_of(model, trace, chunked_config, args.repeats)
    streams_identical = (
        monolithic.pop("token_streams") == chunked.pop("token_streams")
    )

    def gain(metric_path) -> float:
        mono, chunk = monolithic, chunked
        for key in metric_path:
            mono, chunk = mono[key], chunk[key]
        return mono / chunk if chunk > 0 else 0.0

    return {
        "workload": {
            "short_sessions": args.short_sessions,
            "short_prompt_len": args.short_prompt_len,
            "short_max_new": args.short_max_new,
            "long_prompt_len": args.long_prompt_len,
            "long_arrival": args.long_arrival,
            "prefill_chunk_tokens": args.prefill_chunk_tokens,
            "max_step_tokens": args.max_step_tokens,
            "scheduler": "sjf",
        },
        "monolithic": monolithic,
        "chunked": chunked,
        "ttft_p95_gain": gain(("ttft_ms", "p95")),
        "decode_step_p95_gain": gain(("decode_step_latency_ms", "p95")),
        "streams_identical": streams_identical,
    }


def print_spec_report(spec_report: dict) -> None:
    for mode in ("baseline", "speculative"):
        r = spec_report[mode]
        print(
            f"{mode:>11}: {r['decode_tokens_per_s']:7.0f} decode tok/s | "
            f"{r['tokens_per_s']:7.0f} end-to-end tok/s | "
            f"p50 step {r['step_latency_ms']['p50']:.2f} ms"
        )
    print(
        f"spec decode: {spec_report['speedup']:.2f}x decode | "
        f"acceptance {spec_report['acceptance_rate']:.2f} "
        f"({spec_report['accepted']}/{spec_report['drafted']} drafted) | "
        f"{spec_report['tokens_per_spec_step']:.2f} tokens/verify pass | "
        f"streams identical: {spec_report['streams_identical']}"
    )


def spec_gate(spec_report: dict, args) -> int:
    if not spec_report["streams_identical"]:
        print(
            "FAIL: speculative and baseline token streams differ",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_accept_rate is not None
        and spec_report["acceptance_rate"] < args.min_accept_rate
    ):
        print(
            f"FAIL: acceptance rate {spec_report['acceptance_rate']:.2f} "
            f"below required {args.min_accept_rate:.2f}",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_spec_speedup is not None
        and spec_report["speedup"] < args.min_spec_speedup
    ):
        print(
            f"FAIL: speculative speedup {spec_report['speedup']:.2f}x below "
            f"required {args.min_spec_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_serving",
        description="Serving benchmarks: batched decode, chunked prefill, "
        "speculative decode.",
    )
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--prompt-len", type=int, default=64)
    parser.add_argument("--max-new-tokens", type=int, default=128)
    parser.add_argument("--policy", default="streaming")
    parser.add_argument("--budget", type=int, default=64)
    parser.add_argument("--kv-dtype", default="float32",
                        choices=("float32", "float64"),
                        help="KV cache storage precision (both modes; "
                        "float32 halves the attention memory traffic)")
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--vocab", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mean-interarrival", type=float, default=0.5,
                        help="Poisson mean inter-arrival in server steps")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed replays per mode; best run is reported")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the batched/sequential "
                        "decode-phase tokens/s ratio falls below this")
    # ---- chunked-prefill sub-benchmark ----
    parser.add_argument("--short-sessions", type=int, default=8,
                        help="steady short-prompt requests in the mixed trace")
    parser.add_argument("--short-prompt-len", type=int, default=16)
    parser.add_argument("--short-max-new", type=int, default=10)
    parser.add_argument("--long-prompt-len", type=int, default=768,
                        help="the head-of-line-blocking long prompt")
    parser.add_argument("--long-arrival", type=int, default=4,
                        help="arrival step of the long prompt")
    parser.add_argument("--prefill-chunk-tokens", type=int, default=32)
    parser.add_argument("--max-step-tokens", type=int, default=48)
    parser.add_argument("--min-ttft-gain", type=float, default=None,
                        help="exit non-zero if monolithic/chunked TTFT p95 "
                        "falls below this ratio (1.0 = chunked must not "
                        "regress)")
    # ---- speculative-decoding sub-benchmark ----
    parser.add_argument("--spec-k", type=int, default=4,
                        help="draft tokens per verify pass in the "
                        "speculative mode")
    parser.add_argument("--spec-periodic-sessions", type=int, default=6,
                        help="draft-friendly periodic prompts in the "
                        "speculative trace")
    parser.add_argument("--spec-filler-sessions", type=int, default=2,
                        help="unpredictable prompts keeping the acceptance "
                        "rate honest")
    parser.add_argument("--spec-prompt-len", type=int, default=49)
    parser.add_argument("--spec-max-new", type=int, default=96)
    parser.add_argument("--spec-smoke", action="store_true",
                        help="run only the speculative sub-benchmark "
                        "(fast CI gate lane)")
    parser.add_argument("--min-accept-rate", type=float, default=None,
                        help="exit non-zero if the draft acceptance rate "
                        "falls below this fraction")
    parser.add_argument("--min-spec-speedup", type=float, default=None,
                        help="exit non-zero if the speculative/baseline "
                        "decode-phase tokens/s ratio falls below this")
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.prompt_len = min(args.prompt_len, 48)
        args.max_new_tokens = min(args.max_new_tokens, 96)
        args.long_prompt_len = min(args.long_prompt_len, 288)
        args.short_sessions = min(args.short_sessions, 8)

    try:
        args.policy = resolve_policy_name(args.policy)
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 2

    model, tokenizer = build_model(args)

    if args.spec_smoke:
        spec_report = bench_spec_decode(model, tokenizer, args)
        report = {
            "benchmark": "serving_spec_decode_smoke",
            "spec_decode": spec_report,
        }
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print_spec_report(spec_report)
        print(f"wrote {args.out}")
        return spec_gate(spec_report, args)

    batched_report = bench_batched_decode(model, tokenizer, args)
    chunked_report = bench_chunked_prefill(model, tokenizer, args)
    spec_report = bench_spec_decode(model, tokenizer, args)

    report = {
        "benchmark": "serving_batched_decode",
        "smoke": args.smoke,
        "workload": {
            "sessions": args.sessions,
            "prompt_len": args.prompt_len,
            "max_new_tokens": args.max_new_tokens,
            "policy": args.policy,
            "budget": args.budget,
            "kv_dtype": args.kv_dtype,
            "layers": args.layers,
            "vocab": args.vocab,
            "seed": args.seed,
            "mean_interarrival": args.mean_interarrival,
            "repeats": args.repeats,
        },
        **batched_report,
        "chunked_prefill": chunked_report,
        "spec_decode": spec_report,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for mode in ("sequential", "batched"):
        r = report[mode]
        print(
            f"{mode:>10}: {r['decode_tokens_per_s']:7.0f} decode tok/s | "
            f"{r['tokens_per_s']:7.0f} end-to-end tok/s | "
            f"p50 step {r['step_latency_ms']['p50']:.2f} ms | "
            f"ttft p95 {r['ttft_ms']['p95']:.2f} ms"
        )
    print(
        f"speedup:    {report['speedup']:.2f}x decode "
        f"({report['speedup_end_to_end']:.2f}x end-to-end)  |  "
        f"streams identical: {report['streams_identical']}"
    )
    for mode in ("monolithic", "chunked"):
        r = chunked_report[mode]
        print(
            f"{mode:>10}: ttft p95 {r['ttft_ms']['p95']:8.2f} ms | "
            f"decode step p95 {r['decode_step_latency_ms']['p95']:.2f} ms | "
            f"max step tokens {r['step_tokens']['max']}"
        )
    print(
        f"chunked prefill: {chunked_report['ttft_p95_gain']:.2f}x ttft p95, "
        f"{chunked_report['decode_step_p95_gain']:.2f}x decode step p95  |  "
        f"streams identical: {chunked_report['streams_identical']}"
    )
    print_spec_report(spec_report)
    print(f"wrote {args.out}")

    if not report["streams_identical"]:
        print("FAIL: batched and sequential token streams differ", file=sys.stderr)
        return 1
    if not chunked_report["streams_identical"]:
        print(
            "FAIL: chunked and monolithic prefill token streams differ",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {report['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_ttft_gain is not None
        and chunked_report["ttft_p95_gain"] < args.min_ttft_gain
    ):
        print(
            f"FAIL: chunked-prefill TTFT p95 gain "
            f"{chunked_report['ttft_p95_gain']:.2f}x below required "
            f"{args.min_ttft_gain:.2f}x",
            file=sys.stderr,
        )
        return 1
    return spec_gate(spec_report, args)


if __name__ == "__main__":
    sys.exit(main())
