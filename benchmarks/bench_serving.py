"""Serving throughput benchmark: batched vs sequential decode.

Replays a seeded Poisson-arrival trace (``repro.serving.trace``) of
identical-shape sessions through two :class:`SpeContextServer`s that
differ only in ``EngineConfig.batched_decode``, wall-clock-timing every
``step()``. Emits ``BENCH_serving.json`` so each PR leaves a recorded
perf trajectory:

- ``tokens_per_s``: generated tokens / summed step wall time, per mode;
- ``decode_tokens_per_s``: throughput over decode-only steps (steps that
  admit a session also run its prefill — identical work in both modes —
  so the decode phase is what the batched/sequential ratio is about);
- ``step_latency_ms``: mean / p50 / p95 per-step latency, per mode;
- ``speedup``: batched over sequential decode tokens/s (plus
  ``speedup_end_to_end`` for the prefill-inclusive ratio);
- ``streams_identical``: the two modes' token streams compared bit for
  bit (the benchmark refuses to report a speedup built on wrong tokens).

Exit status is non-zero when the streams differ or the speedup falls
below ``--min-speedup`` — which is what lets CI run this as a smoke-mode
perf gate (``--smoke --min-speedup 1.0``).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_serving.py --sessions 16 \
        --policy quest --max-new-tokens 48 --out BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.api.config import EngineConfig, SamplingParams
from repro.api.request import GenerationRequest
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.retrieval.registry import resolve_policy_name
from repro.serving.server import SpeContextServer
from repro.serving.trace import TraceEntry, poisson_trace


def build_workload(args) -> tuple[TransformerLM, SyntheticTokenizer, list[TraceEntry]]:
    """Seeded model + Poisson trace of identical-shape sessions.

    Uniform prompt length / budget / policy keeps every decode step's
    selection shapes aligned, so the batched server fuses all sessions
    into single attention groups — the configuration the paper's
    throughput tables (Table 3) are built around.
    """
    rng = np.random.default_rng(args.seed)
    tokenizer = SyntheticTokenizer(vocab_size=args.vocab)
    config = tiny_test_config(n_layers=args.layers, vocab_size=args.vocab)
    model = TransformerLM(build_recall_model(config, tokenizer, rng))
    requests = []
    for i in range(args.sessions):
        prompt_rng = np.random.default_rng(args.seed + 100 + i)
        ids = [int(t) for t in tokenizer.random_filler_ids(prompt_rng, args.prompt_len)]
        requests.append(
            GenerationRequest(
                np.array([tokenizer.bos_id] + ids),
                sampling=SamplingParams(max_new_tokens=args.max_new_tokens),
                policy=args.policy,
                budget=args.budget,
            )
        )
    trace = poisson_trace(
        np.random.default_rng(args.seed), requests, args.mean_interarrival
    )
    return model, tokenizer, trace


def clone_entry(entry: TraceEntry) -> TraceEntry:
    return TraceEntry(
        arrival_step=entry.arrival_step,
        request=GenerationRequest(
            entry.request.prompt_ids.copy(),
            sampling=entry.request.sampling,
            policy=entry.request.policy,
            budget=entry.request.budget,
            priority=entry.request.priority,
        ),
    )


def run_mode(
    model: TransformerLM,
    tokenizer: SyntheticTokenizer,
    trace: list[TraceEntry],
    args,
    batched: bool,
) -> dict:
    """Replay the trace once, timing each step; returns mode metrics."""
    config = EngineConfig(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.sessions,
        seed=args.seed,
        batched_decode=batched,
        kv_dtype=args.kv_dtype,
    )
    server = SpeContextServer(model, config)
    entries = sorted((clone_entry(e) for e in trace), key=lambda e: e.arrival_step)
    submitted = 0
    step_times: list[float] = []
    step_tokens: list[int] = []
    decode_only: list[bool] = []
    while submitted < len(entries) or server.has_unfinished:
        while (
            submitted < len(entries)
            and entries[submitted].arrival_step <= server.clock
        ):
            server.add_request(entries[submitted].request)
            submitted += 1
        if not server.has_unfinished:
            server.advance_clock_to(entries[submitted].arrival_step)
            continue
        # A step that admits a waiting session runs that session's prefill
        # — identical work in both modes, so it is tracked separately and
        # the decode-phase throughput is reported on the remaining steps.
        admits = server.n_waiting > 0
        start = time.perf_counter()
        server.step()
        step_times.append(time.perf_counter() - start)
        decode_only.append(not admits)
        # Exact tokens emitted this step: one stream event per token
        # (robust to sessions finishing or being preempted mid-step).
        step_tokens.append(len(server.pop_stream_events()))
    outputs = sorted(server.outputs, key=lambda o: o.request_id)
    wall_s = float(sum(step_times))
    generated = sum(len(o.token_ids) for o in outputs)
    times = np.array(step_times)
    mask = np.array(decode_only, dtype=bool)
    decode_wall = float(times[mask].sum())
    decode_tokens = int(np.array(step_tokens)[mask].sum())
    latencies_ms = times * 1e3
    return {
        "mode": "batched" if batched else "sequential",
        "steps": len(step_times),
        "generated_tokens": generated,
        "wall_s": wall_s,
        "tokens_per_s": generated / wall_s if wall_s > 0 else 0.0,
        "decode_steps": int(mask.sum()),
        "decode_tokens_per_s": (
            decode_tokens / decode_wall if decode_wall > 0 else 0.0
        ),
        "tokens_per_step": (
            server.meter.generated_tokens / server.meter.makespan_s
            if server.meter.makespan_s > 0
            else 0.0
        ),
        "step_latency_ms": {
            "mean": float(latencies_ms.mean()),
            "p50": float(np.percentile(latencies_ms, 50)),
            "p95": float(np.percentile(latencies_ms, 95)),
        },
        "token_streams": [o.token_ids for o in outputs],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_serving",
        description="Batched-vs-sequential decode throughput benchmark.",
    )
    parser.add_argument("--sessions", type=int, default=8)
    parser.add_argument("--prompt-len", type=int, default=64)
    parser.add_argument("--max-new-tokens", type=int, default=128)
    parser.add_argument("--policy", default="streaming")
    parser.add_argument("--budget", type=int, default=64)
    parser.add_argument("--kv-dtype", default="float32",
                        choices=("float32", "float64"),
                        help="KV cache storage precision (both modes; "
                        "float32 halves the attention memory traffic)")
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--vocab", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mean-interarrival", type=float, default=0.5,
                        help="Poisson mean inter-arrival in server steps")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed replays per mode; best run is reported")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the batched/sequential "
                        "decode-phase tokens/s ratio falls below this")
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.prompt_len = min(args.prompt_len, 48)
        args.max_new_tokens = min(args.max_new_tokens, 96)

    try:
        args.policy = resolve_policy_name(args.policy)
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 2

    model, tokenizer, trace = build_workload(args)
    results = {}
    for batched in (False, True):
        best = None
        for _ in range(args.repeats):
            run = run_mode(model, tokenizer, trace, args, batched)
            if best is None or run["wall_s"] < best["wall_s"]:
                best = run
        results[best["mode"]] = best

    streams_identical = (
        results["batched"].pop("token_streams")
        == results["sequential"].pop("token_streams")
    )
    speedup = (
        results["batched"]["decode_tokens_per_s"]
        / results["sequential"]["decode_tokens_per_s"]
        if results["sequential"]["decode_tokens_per_s"] > 0
        else 0.0
    )
    speedup_end_to_end = (
        results["batched"]["tokens_per_s"] / results["sequential"]["tokens_per_s"]
        if results["sequential"]["tokens_per_s"] > 0
        else 0.0
    )
    report = {
        "benchmark": "serving_batched_decode",
        "smoke": args.smoke,
        "workload": {
            "sessions": args.sessions,
            "prompt_len": args.prompt_len,
            "max_new_tokens": args.max_new_tokens,
            "policy": args.policy,
            "budget": args.budget,
            "kv_dtype": args.kv_dtype,
            "layers": args.layers,
            "vocab": args.vocab,
            "seed": args.seed,
            "mean_interarrival": args.mean_interarrival,
            "repeats": args.repeats,
        },
        "sequential": results["sequential"],
        "batched": results["batched"],
        "speedup": speedup,
        "speedup_end_to_end": speedup_end_to_end,
        "streams_identical": streams_identical,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for mode in ("sequential", "batched"):
        r = results[mode]
        print(
            f"{mode:>10}: {r['decode_tokens_per_s']:7.0f} decode tok/s | "
            f"{r['tokens_per_s']:7.0f} end-to-end tok/s | "
            f"p50 step {r['step_latency_ms']['p50']:.2f} ms"
        )
    print(
        f"speedup:    {speedup:.2f}x decode ({speedup_end_to_end:.2f}x "
        f"end-to-end)  |  streams identical: {streams_identical}"
    )
    print(f"wrote {args.out}")

    if not streams_identical:
        print("FAIL: batched and sequential token streams differ", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
