"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper artifact in quick mode (small
workloads, same code paths) and asserts the *shape* claims of the paper —
who wins, roughly by how much, where crossovers fall — not absolute
numbers.
"""

from __future__ import annotations

import warnings

import pytest

# scipy's kmeans warns about empty clusters on tiny synthetic key sets;
# ClusterKV handles the fallback, so the warning is benign noise here.
warnings.filterwarnings("ignore", message="One of the clusters is empty")


@pytest.fixture(scope="session")
def quick():
    """All benchmarks run experiments in quick mode."""
    return True


def cell(result, row_matcher, header):
    """Fetch one cell from an ExperimentResult by row predicate + header."""
    idx = result.headers.index(header)
    for row in result.rows:
        if row_matcher(row):
            return row[idx]
    raise KeyError(f"no row matching {row_matcher} in {result.experiment_id}")
