"""Bench: Figure 5(a) — head-level selection beats batch-level."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig05_similarity import run


def test_fig05(benchmark):
    result = benchmark(run, quick=True)
    series: dict[tuple[str, str], list[float]] = {}
    for row in result.rows:
        series[(row[0], row[1])] = [float(v) for v in row[2:]]

    for metric in ("attention-accumulation", "hit-rate"):
        head = np.array(series[(metric, "head")])
        batch = np.array(series[(metric, "batch")])
        # Head-level dominates batch-level on average across budgets
        # (Sec. 4.2's finding).
        assert head.mean() >= batch.mean()

    # Accumulation grows with budget (more mass covered by larger top-k).
    acc = series[("attention-accumulation", "head")]
    assert acc[-1] >= acc[0]
    # Hit rate of head-level selection is high.
    assert np.mean(series[("hit-rate", "head")]) >= 0.7
