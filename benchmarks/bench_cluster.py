"""Cluster-serving benchmark: prefix-affinity routing vs locality-blind.

Replays one seeded shared-system-prompt trace — G prompt groups, each
group sharing a long system prefix ahead of a unique user suffix, arrival
order shuffled so group members interleave — through identical
:class:`~repro.serving.cluster.ClusterFrontend`s that differ only in the
router, and reports per-router:

- **cluster-wide prefix-reused tokens** (the number routing is supposed
  to move): ``round_robin`` scatters each group over the replicas, so a
  member only hits the prefix cache when it happens to land where an
  earlier member ran; ``prefix_affinity`` probes every replica's cache
  and sticks members to their group's replica, turning per-replica
  caches into one cluster-wide asset;
- wall-clock and step-clock TTFT percentiles (reused prefix blocks skip
  real prefill compute, so affinity routing cuts wall TTFT);
- routing-stats tables (per-replica routed / affinity hits / misses /
  cold) and merged-meter throughput.

A second sub-benchmark measures **live KV migration**: the same
``prefix_affinity`` router replayed over a *skewed* trace (one hot
shared-prefix group that affinity piles onto a single replica), with
and without a periodic rebalance pass that drains whole sessions to
idle replicas via :meth:`~repro.serving.server.SpeContextServer
.export_session`/``import_session``. Reported: per-step load variance
across replicas and wall-clock tail TTFT, gated by
``--min-balance-gain``.

The compared runs must agree token for token: per-request streams are
bit-identical across routers — and across migrations — by the
exact-streams contract (placement never changes tokens), and the exit
status is non-zero if they differ. CI gates ``--min-affinity-gain`` on
the affinity/round-robin ratio of cluster-wide prefix-reused tokens
and ``--min-balance-gain`` on the load-variance reduction.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py             # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke \
        --min-affinity-gain 1.0 --min-balance-gain 1.0 \
        --out BENCH_cluster.json                                  # CI gate
    PYTHONPATH=src python benchmarks/bench_cluster.py --replicas 8 \
        --groups 6 --group-size 8 --system-len 160
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig, SamplingParams
from repro.api.request import GenerationRequest
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.serving.cluster import ClusterFrontend
from repro.serving.trace import TraceEntry, poisson_trace

ROUTERS = ("round_robin", "least_loaded", "prefix_affinity")


def build_model(args) -> tuple[TransformerLM, SyntheticTokenizer]:
    rng = np.random.default_rng(args.seed)
    tokenizer = SyntheticTokenizer(vocab_size=args.vocab)
    config = tiny_test_config(n_layers=args.layers, vocab_size=args.vocab)
    return TransformerLM(build_recall_model(config, tokenizer, rng)), tokenizer


def _grouped_trace(
    tokenizer: SyntheticTokenizer, args, group_sizes: list[int]
) -> list[TraceEntry]:
    rng = np.random.default_rng(args.seed)
    prompts = []
    member_base = 0
    for group, size in enumerate(group_sizes):
        system_rng = np.random.default_rng(args.seed + 10_000 + group)
        system = [
            int(t)
            for t in tokenizer.random_filler_ids(system_rng, args.system_len)
        ]
        for member in range(size):
            suffix_rng = np.random.default_rng(
                args.seed + 20_000 + member_base + member
            )
            suffix = [
                int(t)
                for t in tokenizer.random_filler_ids(suffix_rng, args.suffix_len)
            ]
            prompts.append(np.array([tokenizer.bos_id] + system + suffix))
        member_base += size
    order = rng.permutation(len(prompts))
    requests = [
        GenerationRequest(
            prompts[i],
            sampling=SamplingParams(max_new_tokens=args.max_new_tokens),
            policy=args.policy,
            budget=args.budget,
        )
        for i in order
    ]
    return poisson_trace(rng, requests, args.mean_interarrival)


def build_shared_prefix_workload(
    tokenizer: SyntheticTokenizer, args
) -> list[TraceEntry]:
    """G groups x M members, each group sharing a long system prompt.

    Every member's prompt is ``BOS + group system prefix + unique user
    suffix``; the member order is a seeded shuffle, so consecutive
    arrivals usually belong to *different* groups — exactly the
    interleaving that defeats cyclic placement — and Poisson arrival
    gaps let earlier members publish their prefix blocks before later
    members of the same group are routed.
    """
    return _grouped_trace(tokenizer, args, [args.group_size] * args.groups)


def build_skewed_workload(
    tokenizer: SyntheticTokenizer, args
) -> list[TraceEntry]:
    """The same shape with one *hot* group dominating the arrivals.

    Prefix-affinity routing sticks every hot-group member to the one
    replica holding the shared prefix, which is exactly right for cache
    reuse and exactly wrong for load: that replica queues while its
    peers idle. This is the trace the live-migration rebalance pass is
    measured on.
    """
    sizes = [args.hot_group_size] + [args.group_size] * (args.groups - 1)
    return _grouped_trace(tokenizer, args, sizes)


def clone_entry(entry: TraceEntry) -> TraceEntry:
    return TraceEntry(
        arrival_step=entry.arrival_step,
        request=GenerationRequest(
            entry.request.prompt_ids.copy(),
            sampling=entry.request.sampling,
            policy=entry.request.policy,
            budget=entry.request.budget,
            priority=entry.request.priority,
        ),
    )


def replay_timed(
    model: TransformerLM,
    trace: list[TraceEntry],
    config: EngineConfig,
    cluster: ClusterConfig,
) -> dict:
    """Replay ``trace`` through a fresh frontend, wall-timing each step."""
    frontend = ClusterFrontend(model, config, cluster)
    entries = sorted(
        (clone_entry(e) for e in trace), key=lambda e: e.arrival_step
    )
    submitted = 0
    step_wall: list[float] = []
    step_loads: list[list[int]] = []
    submit_wall: dict[int, float] = {}
    first_token_wall: dict[int, float] = {}
    while submitted < len(entries) or frontend.has_unfinished:
        while (
            submitted < len(entries)
            and entries[submitted].arrival_step <= frontend.clock
        ):
            request_id = frontend.add_request(entries[submitted].request)
            submit_wall[request_id] = time.perf_counter()
            submitted += 1
        if not frontend.has_unfinished:
            frontend.advance_clock_to(entries[submitted].arrival_step)
            continue
        step_loads.append([
            server.reserved_tokens + server.n_waiting
            for server in frontend.replicas
        ])
        start = time.perf_counter()
        frontend.step()
        end = time.perf_counter()
        step_wall.append(end - start)
        for event in frontend.pop_stream_events():
            first_token_wall.setdefault(event.request_id, end)
    ttft_wall_s = {
        rid: first_token_wall[rid] - submit_wall[rid] for rid in first_token_wall
    }
    return {
        "frontend": frontend,
        "step_wall": step_wall,
        "step_loads": step_loads,
        "ttft_wall_s": ttft_wall_s,
    }


def _pct(values, q) -> float:
    return float(np.percentile(values, q)) if len(values) else 0.0


def router_metrics(run: dict) -> dict:
    """Aggregate one replay into the reported per-router entry."""
    frontend = run["frontend"]
    meter = frontend.stats()
    routing = frontend.routing
    wall = np.array(run["step_wall"])
    ttfts_ms = [1e3 * t for t in run["ttft_wall_s"].values()]
    outputs = frontend.outputs
    loads = np.array(run["step_loads"], dtype=float)
    # Mean per-step population variance of the replica loads (admission
    # charge + queue depth): 0 when perfectly balanced every step.
    load_variance = float(np.mean(np.var(loads, axis=1))) if loads.size else 0.0
    return {
        "router": frontend.router.name,
        "n_replicas": frontend.n_replicas,
        "steps": len(wall),
        "wall_s": float(wall.sum()),
        "generated_tokens": sum(len(o.token_ids) for o in outputs),
        "prefix_reused_tokens": frontend.prefix_reused_tokens(),
        "affinity_hit_rate": routing.hit_rate,
        "per_replica": {
            "routed": list(routing.routed),
            "affinity_hits": list(routing.affinity_hits),
            "affinity_misses": list(routing.affinity_misses),
            "cold": list(routing.cold),
            "prefix_blocks_reused": [
                r.pool.stats.prefix_blocks_reused for r in frontend.replicas
            ],
        },
        "ttft_ms": {
            "mean": float(np.mean(ttfts_ms)) if ttfts_ms else 0.0,
            "p50": _pct(ttfts_ms, 50),
            "p95": _pct(ttfts_ms, 95),
        },
        "ttft_steps": {
            "p50": meter.ttft_percentile(50),
            "p95": meter.ttft_percentile(95),
        },
        "tokens_per_step": meter.tokens_per_second,
        "busy_tokens_per_step": meter.busy_tokens_per_second,
        "preemptions": len(frontend.preemption_log),
        "load_variance": load_variance,
        "migrations": len(frontend.migrations),
        "token_streams": [o.token_ids for o in outputs],
    }


def ratio(num: float, den: float) -> float:
    # A zero baseline with a non-zero numerator is an unbounded win
    # (e.g. round_robin scattered every group member, reusing nothing)
    # and must pass the gate, not report the worst possible 0.0x;
    # 0/0 means "no difference to measure" and gates as 1.0.
    if den > 0:
        return num / den
    return float("inf") if num > 0 else 1.0


def run_best_of(model, trace, config, cluster, repeats: int) -> dict:
    best = None
    for _ in range(repeats):
        run = router_metrics(replay_timed(model, trace, config, cluster))
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    return best


def bench_cluster(model, tokenizer, args) -> dict:
    trace = build_shared_prefix_workload(tokenizer, args)
    config = EngineConfig(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.concurrency,
        seed=args.seed,
        block_size=args.block_size,
        kv_dtype=args.kv_dtype,
    )
    routers = {}
    for router in ROUTERS:
        cluster = ClusterConfig(
            n_replicas=args.replicas,
            router=router,
            stickiness_tokens=args.stickiness_tokens,
        )
        routers[router] = run_best_of(
            model, trace, config, cluster, args.repeats
        )
    streams = {name: r.pop("token_streams") for name, r in routers.items()}
    reference = streams["round_robin"]
    streams_identical = all(s == reference for s in streams.values())

    affinity = routers["prefix_affinity"]
    baseline = routers["round_robin"]
    return {
        "routers": routers,
        "affinity_gain_prefix_tokens": ratio(
            affinity["prefix_reused_tokens"], baseline["prefix_reused_tokens"]
        ),
        "ttft_p95_gain": ratio(
            baseline["ttft_ms"]["p95"], affinity["ttft_ms"]["p95"]
        ),
        "streams_identical": streams_identical,
    }


def bench_migration(model, tokenizer, args) -> dict:
    """Live-migration sub-benchmark: rebalance on vs off, same skewed trace.

    Both runs route with ``prefix_affinity`` over the hot-group trace;
    the contender adds a periodic :meth:`~repro.serving.cluster
    .ClusterFrontend.rebalance` pass that drains whole sessions from the
    overloaded replica via live KV migration. Reported gains: per-step
    load variance (balance) and wall-clock tail TTFT. The two runs'
    token streams must be identical — migration moves sessions
    wholesale, so placement history never shows up in the tokens.
    """
    # The skewed trace needs genuine queueing pressure on the hot
    # replica (tight concurrency, dense arrivals) or rebalancing has no
    # tail latency to win back — hence its own pressure knobs.
    args = copy.copy(args)
    args.concurrency = args.migration_concurrency
    args.mean_interarrival = args.migration_interarrival
    trace = build_skewed_workload(tokenizer, args)
    config = EngineConfig(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.concurrency,
        seed=args.seed,
        block_size=args.block_size,
        kv_dtype=args.kv_dtype,
    )
    runs = {}
    for name, rebalance_every in (
        ("prefix_affinity", 0),
        ("rebalance", args.rebalance_every),
    ):
        cluster = ClusterConfig(
            n_replicas=args.replicas,
            router="prefix_affinity",
            stickiness_tokens=args.stickiness_tokens,
            rebalance_every=rebalance_every,
            rebalance_ratio=args.rebalance_ratio,
            max_migrations_per_pass=args.max_migrations_per_pass,
        )
        runs[name] = run_best_of(model, trace, config, cluster, args.repeats)
    streams = {name: r.pop("token_streams") for name, r in runs.items()}
    baseline = runs["prefix_affinity"]
    rebalanced = runs["rebalance"]
    return {
        "runs": runs,
        "balance_gain": ratio(
            baseline["load_variance"], rebalanced["load_variance"]
        ),
        "ttft_p95_gain": ratio(
            baseline["ttft_ms"]["p95"], rebalanced["ttft_ms"]["p95"]
        ),
        "ttft_p95_steps_gain": ratio(
            baseline["ttft_steps"]["p95"], rebalanced["ttft_steps"]["p95"]
        ),
        "migrations": rebalanced["migrations"],
        "streams_identical": streams["rebalance"]
        == streams["prefix_affinity"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_cluster",
        description="Multi-replica cluster serving benchmark: "
        "prefix-affinity routing vs round-robin and least-loaded.",
    )
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--groups", type=int, default=5,
                        help="shared-system-prompt groups in the trace")
    parser.add_argument("--group-size", type=int, default=6,
                        help="requests per group (sharing that system prompt)")
    parser.add_argument("--system-len", type=int, default=96,
                        help="shared system-prompt length in tokens")
    parser.add_argument("--suffix-len", type=int, default=16,
                        help="unique user-suffix length in tokens")
    parser.add_argument("--max-new-tokens", type=int, default=6)
    parser.add_argument("--policy", default="streaming")
    parser.add_argument("--budget", type=int, default=64)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--stickiness-tokens", type=int, default=16)
    parser.add_argument("--kv-dtype", default="float32",
                        choices=("float32", "float64"))
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--vocab", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mean-interarrival", type=float, default=2.0,
                        help="Poisson mean inter-arrival in cluster steps")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed replays per router; best run is reported")
    parser.add_argument("--hot-group-size", type=int, default=18,
                        help="members in the skewed trace's hot group "
                        "(migration sub-benchmark)")
    parser.add_argument("--migration-concurrency", type=int, default=4,
                        help="per-replica max concurrency in the migration "
                        "sub-benchmark (tight, to build hot-replica queues)")
    parser.add_argument("--migration-interarrival", type=float, default=1.0,
                        help="Poisson mean inter-arrival for the skewed "
                        "trace")
    parser.add_argument("--rebalance-every", type=int, default=2,
                        help="rebalance cadence in the migration "
                        "sub-benchmark's contender run")
    parser.add_argument("--rebalance-ratio", type=float, default=1.2,
                        help="imbalance ratio triggering a migration")
    parser.add_argument("--max-migrations-per-pass", type=int, default=4)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    parser.add_argument("--min-affinity-gain", type=float, default=None,
                        help="exit non-zero if prefix_affinity's cluster-wide "
                        "prefix-reused tokens fall below this multiple of "
                        "round_robin's")
    parser.add_argument("--min-balance-gain", type=float, default=None,
                        help="exit non-zero if the rebalance run's load "
                        "variance fails to beat plain prefix_affinity by "
                        "this multiple on the skewed trace")
    parser.add_argument("--out", default="BENCH_cluster.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.replicas = min(args.replicas, 3)
        args.groups = min(args.groups, 4)
        args.group_size = min(args.group_size, 4)
        args.system_len = min(args.system_len, 64)
        args.layers = min(args.layers, 2)
        args.repeats = min(args.repeats, 2)
        args.hot_group_size = min(args.hot_group_size, 12)

    model, tokenizer = build_model(args)
    report = {
        "benchmark": "cluster_serving",
        "smoke": args.smoke,
        "workload": {
            "replicas": args.replicas,
            "groups": args.groups,
            "group_size": args.group_size,
            "system_len": args.system_len,
            "suffix_len": args.suffix_len,
            "max_new_tokens": args.max_new_tokens,
            "policy": args.policy,
            "budget": args.budget,
            "concurrency": args.concurrency,
            "block_size": args.block_size,
            "stickiness_tokens": args.stickiness_tokens,
            "kv_dtype": args.kv_dtype,
            "layers": args.layers,
            "vocab": args.vocab,
            "seed": args.seed,
            "mean_interarrival": args.mean_interarrival,
            "repeats": args.repeats,
            "hot_group_size": args.hot_group_size,
            "migration_concurrency": args.migration_concurrency,
            "migration_interarrival": args.migration_interarrival,
            "rebalance_every": args.rebalance_every,
            "rebalance_ratio": args.rebalance_ratio,
            "max_migrations_per_pass": args.max_migrations_per_pass,
        },
        **bench_cluster(model, tokenizer, args),
        "migration": bench_migration(model, tokenizer, args),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for name in ROUTERS:
        r = report["routers"][name]
        print(
            f"{name:>15}: {r['prefix_reused_tokens']:6d} prefix tokens reused "
            f"| hit rate {r['affinity_hit_rate']:4.0%} | "
            f"ttft p95 {r['ttft_ms']['p95']:7.2f} ms | "
            f"{r['tokens_per_step']:.2f} tok/step"
        )
    print(
        f"prefix_affinity vs round_robin: "
        f"{report['affinity_gain_prefix_tokens']:.2f}x prefix-reused tokens, "
        f"{report['ttft_p95_gain']:.2f}x ttft p95  |  "
        f"streams identical: {report['streams_identical']}"
    )
    migration = report["migration"]
    for name in ("prefix_affinity", "rebalance"):
        r = migration["runs"][name]
        print(
            f"{name:>15}: load variance {r['load_variance']:10.1f} | "
            f"ttft p95 {r['ttft_steps']['p95']:5.1f} steps "
            f"/ {r['ttft_ms']['p95']:7.2f} ms | "
            f"{r['migrations']:2d} migrations | "
            f"{r['tokens_per_step']:.2f} tok/step"
        )
    print(
        f"rebalance vs prefix_affinity (skewed trace): "
        f"{migration['balance_gain']:.2f}x load-variance reduction, "
        f"{migration['ttft_p95_steps_gain']:.2f}x ttft p95 steps, "
        f"{migration['migrations']} live migrations  |  "
        f"streams identical: {migration['streams_identical']}"
    )
    print(f"wrote {args.out}")

    if not report["streams_identical"]:
        print(
            "FAIL: token streams differ across routers", file=sys.stderr
        )
        return 1
    if not migration["streams_identical"]:
        print(
            "FAIL: token streams differ under live migration",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_affinity_gain is not None
        and report["affinity_gain_prefix_tokens"] < args.min_affinity_gain
    ):
        print(
            f"FAIL: affinity gain "
            f"{report['affinity_gain_prefix_tokens']:.2f}x below required "
            f"{args.min_affinity_gain:.2f}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_balance_gain is not None
        and migration["balance_gain"] < args.min_balance_gain
    ):
        print(
            f"FAIL: balance gain {migration['balance_gain']:.2f}x below "
            f"required {args.min_balance_gain:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
